module Faulty = Zmsq_prim.Faulty
module Rng = Zmsq_util.Rng
module Elt = Zmsq_pq.Elt
module Barrier = Zmsq_sync.Barrier

(* The queue under soak: every primitive routed through the fault adapter,
   node trylocks additionally subject to injected contention losses. *)
module FP = Faulty.Make (Zmsq_prim.Native) ()
module FLocks = Zmsq_sync.Lock.Make (FP)

module FLock =
  Zmsq_sync.Lock.Faulty
    (FLocks.Tatas)
    (struct
      let fail_try_acquire = FP.Ctl.inject_try_acquire_failure
    end)

module Q = Zmsq.Make_prim (FP) (FLock) (Zmsq.List_set)

(* The sharded build under the same fault adapter: shard-churn drives
   sticky insert routing and two-choice extraction through injected
   trylock losses. *)
module SQ = Zmsq.Shard.Make_prim (FP) (FLock) (Zmsq.List_set)

type faults = {
  trylock_fail_1in : int;
  wake_delay_1in : int;
  wake_delay_ops : int;
  spurious_timeout_1in : int;
  stall_faa_1in : int;
  stall_exchange_1in : int;
  stall_relax : int;
  freeze_ms : float;
  io_short_1in : int;
  io_stall_1in : int;
  io_drop_1in : int;
  io_torn_1in : int;
}

let no_faults =
  {
    trylock_fail_1in = 0;
    wake_delay_1in = 0;
    wake_delay_ops = 0;
    spurious_timeout_1in = 0;
    stall_faa_1in = 0;
    stall_exchange_1in = 0;
    stall_relax = 0;
    freeze_ms = 0.;
    io_short_1in = 0;
    io_stall_1in = 0;
    io_drop_1in = 0;
    io_torn_1in = 0;
  }

let default_faults =
  {
    trylock_fail_1in = 5;
    wake_delay_1in = 4;
    wake_delay_ops = 40;
    spurious_timeout_1in = 4;
    stall_faa_1in = 64;
    stall_exchange_1in = 64;
    stall_relax = 200;
    freeze_ms = 40.;
    (* Wire faults only bite in the server-overload phase (the only one
       with sockets); harmless elsewhere. *)
    io_short_1in = 6;
    io_stall_1in = 16;
    io_drop_1in = 400;
    io_torn_1in = 500;
  }

type phase =
  | Mixed
  | Burst
  | Producer_dies
  | Consumer_starves
  | Handle_churn
  | Shard_churn
  | Ring_ingress
  | Server_overload

let phase_name = function
  | Mixed -> "mixed"
  | Burst -> "burst"
  | Producer_dies -> "producer-dies"
  | Consumer_starves -> "consumer-starves"
  | Handle_churn -> "handle-churn"
  | Shard_churn -> "shard-churn"
  | Ring_ingress -> "ring-ingress"
  | Server_overload -> "server-overload"

let phase_of_name = function
  | "mixed" -> Some Mixed
  | "burst" -> Some Burst
  | "producer-dies" -> Some Producer_dies
  | "consumer-starves" -> Some Consumer_starves
  | "handle-churn" -> Some Handle_churn
  | "shard-churn" -> Some Shard_churn
  | "ring-ingress" -> Some Ring_ingress
  | "server-overload" -> Some Server_overload
  | _ -> None

let all_phases =
  [
    Mixed;
    Burst;
    Producer_dies;
    Consumer_starves;
    Handle_churn;
    Shard_churn;
    Ring_ingress;
    Server_overload;
  ]

type phase_report = {
  phase : phase;
  seconds : float;
  inserted : int;
  extracted : int;
  drained : int;
  reclaimed : int;  (** orphaned handles scavenged (live + end-of-phase) *)
  ec_sleeps : int;
  ec_wakes : int;
  qos_samples : int;
  rank_err_max : float;
  rank_gap_p99 : float;
  sojourn_p99_ns : float;
  violations : string list;
}

type report = {
  phases : phase_report list;
  total_inserted : int;
  total_extracted : int;
  total_drained : int;
  fault_stats : (string * int) list;
  violations : string list;
  artifacts : string list;
}

type config = {
  seed : int;
  secs : float;
  producers : int;
  consumers : int;
  batch : int;
  buffer_len : int;
  ring_len : int;  (** per-node slot count for the ring-ingress phase *)
  stale_ms : float;
  faults : faults;
  artifacts_dir : string option;
  log : (string -> unit) option;
  phases : phase list;
  shards : int;
}

let default_config =
  {
    seed = 1;
    secs = 2.0;
    producers = 2;
    consumers = 2;
    batch = 48;
    buffer_len = 8;
    ring_len = 8;
    stale_ms = 1500.;
    faults = default_faults;
    artifacts_dir = None;
    log = None;
    phases = all_phases;
    shards = 4;
  }

let now_ns = Zmsq_util.Timing.now_ns

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let dump_artifacts q dir tag =
  mkdir_p dir;
  let snap = Zmsq_obs.Metrics.snapshot (Q.metrics q) in
  let mpath =
    Zmsq_obs.Export.write_file
      ~path:(Filename.concat dir (tag ^ "-metrics.json"))
      (Zmsq_obs.Json.to_string (Zmsq_obs.Export.json_of_snapshot snap))
  in
  match Q.trace q with
  | Some tr ->
      [ mpath; Zmsq_obs.Trace.save ~path:(Filename.concat dir (tag ^ "-trace.json")) tr ]
  | None -> [ mpath ]

let diff_stats before after =
  List.map
    (fun (k, v) -> (k, v - (try List.assoc k before with Not_found -> 0)))
    after

(* One phase = one fresh queue + one fresh set of worker domains, so a
   violation's artifacts describe exactly the workload that tripped it. *)
let run_phase cfg ~index ~phase ~dur =
  let log s =
    match cfg.log with
    | Some f -> f (Printf.sprintf "[soak %-16s] %s" (phase_name phase) s)
    | None -> ()
  in
  let f = cfg.faults in
  FP.Ctl.reset ();
  FP.Ctl.install
    {
      Faulty.seed = cfg.seed lxor ((index + 1) * 0x9E37);
      trylock_fail_1in = f.trylock_fail_1in;
      wake_delay_1in = f.wake_delay_1in;
      wake_delay_ops = f.wake_delay_ops;
      spurious_timeout_1in = f.spurious_timeout_1in;
      stall_faa_1in = f.stall_faa_1in;
      stall_exchange_1in = f.stall_exchange_1in;
      stall_relax = f.stall_relax;
      io_short_1in = f.io_short_1in;
      io_stall_1in = f.io_stall_1in;
      io_drop_1in = f.io_drop_1in;
      io_torn_1in = f.io_torn_1in;
    };
  let params =
    Zmsq.Params.validate
      {
        Zmsq.Params.default with
        batch = cfg.batch;
        buffer_len = cfg.buffer_len;
        (* The FAA ingress ring is exercised by its own phase so the other
           phases keep measuring the staging paths they were written for;
           under the fault adapter every ring claim runs through
           [FP.fetch_and_add]'s injected stall windows. *)
        ring_len = (match phase with Ring_ingress -> max 1 cfg.ring_len | _ -> 0);
        blocking = true;
        obs = Zmsq_obs.Level.Full;
        (* Dense QoS sampling (1 in 16): soak phases are short, and the
           relaxation-bound watchdog below needs real samples to bite. *)
        obs_sample_shift = 4;
      }
  in
  let q = Q.create ~params () in
  let stop = Stdlib.Atomic.make false in
  let inserted = Stdlib.Atomic.make 0 in
  let extracted = Stdlib.Atomic.make 0 in
  let blocking_alive = Stdlib.Atomic.make 0 in
  let producer_keys = Array.make (max 1 cfg.producers) (-1) in
  let vio_mu = Stdlib.Mutex.create () in
  let vios = ref [] in
  let artifacts = ref [] in
  let dumped = ref false in
  let violation msg =
    Stdlib.Mutex.lock vio_mu;
    Fun.protect
      ~finally:(fun () -> Stdlib.Mutex.unlock vio_mu)
      (fun () ->
        vios := msg :: !vios;
        log ("VIOLATION: " ^ msg);
        match cfg.artifacts_dir with
        | Some dir when not !dumped ->
            dumped := true;
            artifacts :=
              dump_artifacts q dir (Printf.sprintf "soak-%s" (phase_name phase))
        | _ -> ())
  in
  (* main + producers + consumers + monitor *)
  let bar = Barrier.create (cfg.producers + cfg.consumers + 2) in
  let ins_one h rng =
    (* Count before publishing so the monitor can never observe
       extracted > inserted. *)
    Stdlib.Atomic.incr inserted;
    Q.insert h (Elt.of_priority (Rng.int rng 1_000_000))
  in
  let park_until_stop () =
    while not (Stdlib.Atomic.get stop) do
      Unix.sleepf 0.001
    done
  in
  let victim_handle = Stdlib.Atomic.make None in
  let producer idx () =
    producer_keys.(idx) <- FP.Ctl.self_key ();
    let h = Q.register q in
    let rng = Rng.create ~seed:(cfg.seed + (101 * idx) + 7) () in
    Barrier.wait bar;
    (match phase with
    | Mixed ->
        while not (Stdlib.Atomic.get stop) do
          ins_one h rng;
          if Rng.int rng 512 = 0 then Unix.sleepf 0.0002
        done
    | Burst ->
        while not (Stdlib.Atomic.get stop) do
          for _ = 1 to 48 do
            ins_one h rng
          done;
          Unix.sleepf 0.001
        done
    | Producer_dies ->
        if idx = 0 then begin
          (* Insert a backlog, then die for real: crash the domain (it
             parks at its next primitive op) with the handle never
             unregistered and whatever stayed staged still in the insert
             buffer. Conservation now depends entirely on the orphan
             declaration (monitor) and reclamation (consumer piggyback or
             the end-of-phase scavenge). *)
          for _ = 1 to 64 do
            ins_one h rng
          done;
          Stdlib.Atomic.set victim_handle (Some h);
          FP.Ctl.crash (FP.Ctl.self_key ());
          (* Parks inside the first cpu_relax; released by the teardown
             thaw, after which [stop] is already set. *)
          while not (Stdlib.Atomic.get stop) do
            FP.cpu_relax ()
          done
        end
        else
          while not (Stdlib.Atomic.get stop) do
            ins_one h rng;
            if Rng.int rng 512 = 0 then Unix.sleepf 0.0002
          done
    | Consumer_starves ->
        (* One-shot producer: a single staggered insert, then silence.
           Whether that element ever becomes visible is exactly the
           demand-after-stage contract of buf_insert (bug B). *)
        Unix.sleepf (0.01 +. (0.025 *. float_of_int idx));
        if not (Stdlib.Atomic.get stop) then ins_one h rng;
        park_until_stop ()
    | Handle_churn ->
        (* Register/retire churn with deliberate leaks: a fraction of
           handles are abandoned via [orphan] instead of unregistered, so
           registration pressure (the hazard table is finite) forces the
           scavenger to actually run — a registration that fails with the
           table full must succeed after [reclaim_orphans]. *)
        let rec churn () =
          if not (Stdlib.Atomic.get stop) then begin
            match
              try Some (Q.register q)
              with Invalid_argument _ ->
                ignore (Q.reclaim_orphans q);
                None
            with
            | None -> churn ()
            | Some h2 ->
                for _ = 1 to 1 + Rng.int rng 4 do
                  ins_one h2 rng
                done;
                if Rng.int rng 4 = 0 then Q.orphan h2 else Q.unregister h2;
                churn ()
          end
        in
        churn ()
    | Ring_ingress ->
        (* Insert bursts sized past one ring node so producers regularly
           seal generations themselves (the FAA-claim / seal / drain
           handoff), with occasional explicit flushes forcing the demand
           drain while other producers are mid-claim — exactly the window
           the injected FAA stalls hold open. *)
        while not (Stdlib.Atomic.get stop) do
          for _ = 1 to cfg.ring_len + (1 + Rng.int rng cfg.ring_len) do
            ins_one h rng
          done;
          if Rng.int rng 8 = 0 then Q.flush h;
          if Rng.int rng 64 = 0 then Unix.sleepf 0.0002
        done
    | Shard_churn | Server_overload ->
        (* Dispatched to dedicated runners by [run]; never reaches here. *)
        assert false);
    (* The crashed victim never unregisters — that is the point. *)
    if not (phase = Producer_dies && idx = 0) then Q.unregister h
  in
  let consumer idx () =
    let h = Q.register q in
    let blocking_mode = phase = Burst && idx = 0 in
    if blocking_mode then Stdlib.Atomic.incr blocking_alive;
    Barrier.wait bar;
    (if blocking_mode then begin
       while not (Stdlib.Atomic.get stop) do
         let v = Q.extract_blocking h in
         if not (Elt.is_none v) then Stdlib.Atomic.incr extracted
       done;
       Stdlib.Atomic.decr blocking_alive
     end
     else
       let timeout_ns =
         match phase with Consumer_starves -> 3_000_000 | _ -> 2_000_000
       in
       while not (Stdlib.Atomic.get stop) do
         let v = Q.extract_timeout h ~timeout_ns in
         if not (Elt.is_none v) then Stdlib.Atomic.incr extracted
       done);
    Q.unregister h
  in
  let monitor () =
    FP.Ctl.exempt_self ();
    Barrier.wait bar;
    let stale_ns = int_of_float (cfg.stale_ms *. 1e6) in
    let start = now_ns () in
    let anchor = ref start in
    let last_ext = ref 0 in
    let next_beat = ref (start + 500_000_000) in
    let freeze_due =
      if f.freeze_ms > 0. && phase <> Consumer_starves then
        Some (start + int_of_float (dur *. 0.4 *. 1e9))
      else None
    in
    let frozen = ref None in
    while not (Stdlib.Atomic.get stop) do
      Unix.sleepf 0.002;
      (* Deliver every delayed wake: "delayed" must never become
         "dropped", and any remaining stall is the algorithm's fault. *)
      FP.Ctl.quiesce ();
      (* Declare the crashed producer's handle orphaned (idempotent CAS):
         from here consumers may piggyback-reclaim its staged backlog. *)
      (match Stdlib.Atomic.get victim_handle with
      | Some vh when FP.Ctl.crashed () <> [] -> Q.orphan vh
      | _ -> ());
      let now = now_ns () in
      (* Conservation, sampled extracted-first so the inequality is
         monotone-safe under concurrent updates. *)
      let ext = Stdlib.Atomic.get extracted in
      let ins = Stdlib.Atomic.get inserted in
      if ext > ins then
        violation (Printf.sprintf "conservation: extracted %d > inserted %d" ext ins);
      if ext <> !last_ext then begin
        last_ext := ext;
        anchor := now
      end;
      if Q.length q = 0 then anchor := now;
      (match (freeze_due, !frozen) with
      | Some due, None when now >= due && producer_keys.(min 1 (cfg.producers - 1)) >= 0
        ->
          let victim = producer_keys.(min 1 (cfg.producers - 1)) in
          FP.Ctl.freeze victim;
          frozen := Some (victim, now + int_of_float (f.freeze_ms *. 1e6))
      | _ -> ());
      (match !frozen with
      | Some (victim, until) when now >= until ->
          FP.Ctl.thaw victim;
          frozen := Some (victim, max_int);
          (* A thawed lock-holder may have pinned extraction for the whole
             window; restart the staleness clock. *)
          anchor := now
      | _ -> ());
      if now - !anchor > stale_ns then begin
        violation
          (Printf.sprintf
             "stale element: %d published elements but no extraction progress in \
              %.0f ms"
             (Q.length q) cfg.stale_ms);
        anchor := now
      end;
      if now >= !next_beat then begin
        next_beat := now + 500_000_000;
        log
          (Printf.sprintf "heartbeat: inserted=%d extracted=%d len=%d buffered=%d"
             ins ext (Q.length q) (Q.Debug.buffered q))
      end
    done;
    (match !frozen with
    | Some (victim, _) -> FP.Ctl.thaw victim
    | None -> ());
    FP.Ctl.quiesce ()
  in
  let t0 = now_ns () in
  let doms =
    List.init cfg.producers (fun i -> Domain.spawn (producer i))
    @ List.init cfg.consumers (fun i -> Domain.spawn (consumer i))
  in
  let mon = Domain.spawn monitor in
  let hmain = Q.register q in
  Barrier.wait bar;
  Unix.sleepf dur;
  Stdlib.Atomic.set stop true;
  Domain.join mon;
  (* Blocking consumers hold no deadline; feed sentinels (flushed so they
     publish immediately) until every one has re-checked [stop] and left. *)
  while Stdlib.Atomic.get blocking_alive > 0 do
    FP.Ctl.quiesce ();
    Stdlib.Atomic.incr inserted;
    Q.insert hmain (Elt.of_priority 1);
    Q.flush hmain;
    Unix.sleepf 0.0005
  done;
  (* A crashed domain is parked at its freeze gate; release it so the join
     below terminates — [stop] is already set, so it exits immediately. *)
  List.iter FP.Ctl.thaw (FP.Ctl.crashed ());
  List.iter Domain.join doms;
  FP.Ctl.quiesce ();
  let seconds = float_of_int (now_ns () - t0) /. 1e9 in
  (* Quiescent accounting: every live worker handle was unregistered
     (staged residue published); dead ones are orphaned here if the
     monitor never got to it, then scavenged — after which nothing may
     remain staged anywhere. *)
  (match Stdlib.Atomic.get victim_handle with
  | Some vh when Q.handle_state vh = Zmsq.Live -> Q.orphan vh
  | _ -> ());
  ignore (Q.reclaim_orphans q);
  let drained = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let v = Q.extract hmain in
    if Elt.is_none v then continue_ := false else incr drained
  done;
  let ins = Stdlib.Atomic.get inserted in
  let ext = Stdlib.Atomic.get extracted in
  if ins <> ext + !drained then
    violation
      (Printf.sprintf "conservation: inserted %d <> extracted %d + drained %d" ins
         ext !drained);
  if Q.Debug.buffered q <> 0 then
    violation
      (Printf.sprintf "staged residue after unregister+reclaim+drain: %d"
         (Q.Debug.buffered q));
  if not (Q.Debug.check_invariant q) then violation "tree invariant check failed";
  (match phase with
  | Consumer_starves
    when dur >= (0.025 *. float_of_int cfg.producers) +. 0.3 && cfg.consumers > 0 ->
      (* Every one-shot insert after the first must have been demand-flushed
         and claimed while the phase ran (bug-B contract); only the very
         first may legally sit staged until unregister. *)
      let need = max 1 (cfg.producers - 1) in
      if ext < need then
        violation
          (Printf.sprintf
             "consumer starvation: only %d of %d one-shot inserts were extracted \
              live (need >= %d)"
             ext cfg.producers need)
  | _ -> ());
  (* Bug-A probe: a zero-budget extract_timeout against a provably nonempty
     queue must claim via the final poll, never report empty. *)
  Q.insert hmain (Elt.of_priority 7);
  Q.flush hmain;
  let probe = Q.extract_timeout hmain ~timeout_ns:0 in
  if Elt.is_none probe then
    violation "final poll: zero-budget extract_timeout missed a present element";
  Q.unregister hmain;
  if Q.Debug.live_handles q <> 0 then
    violation
      (Printf.sprintf "handle registry leak: %d handles survive teardown"
         (Q.Debug.live_handles q));
  let reclaimed = (Q.Debug.counters q).Zmsq.orphan_reclaims in
  (match phase with
  | Producer_dies when reclaimed < 1 ->
      violation "producer-dies: the crashed producer's handle was never reclaimed"
  | _ -> ());
  let ec_sleeps, ec_wakes =
    match Q.Debug.eventcount_stats q with Some (s, w) -> (s, w) | None -> (0, 0)
  in
  (* Relaxation-quality accounting from the queue's own sampled QoS
     telemetry, then the conservation-style bound: a sampled extract may
     be outranked by at most one staged extraction batch plus every
     worker's insert buffer (PR 3's relaxation window). The rank proxy
     only counts claimable pool entries plus the cached root max, so the
     bound holds even for handle-churn's unbounded transient handles. *)
  let module Hist = Zmsq_util.Stats.Histogram in
  let snap = Zmsq_obs.Metrics.snapshot (Q.metrics q) in
  let qos_samples =
    try List.assoc "qos_samples_total" snap.Zmsq_obs.Metrics.counters
    with Not_found -> 0
  in
  let qhist name = List.assoc_opt name snap.Zmsq_obs.Metrics.hists in
  let rank_err_max =
    match qhist "rank_error_sampled" with Some h -> Hist.max_value h | None -> 0.0
  in
  let rank_gap_p99 =
    match qhist "rank_gap_keys" with Some h -> Hist.percentile h 99.0 | None -> 0.0
  in
  let sojourn_p99_ns =
    match qhist "sojourn_ns" with Some h -> Hist.percentile h 99.0 | None -> 0.0
  in
  let relax_bound =
    cfg.batch
    + ((cfg.producers + cfg.consumers + 1) * cfg.buffer_len)
    + Zmsq.Params.ring_capacity params
  in
  if qos_samples > 0 && rank_err_max > float_of_int relax_bound then
    violation
      (Printf.sprintf
         "relaxation bound: sampled rank error %.0f exceeds batch + \
          ndomains*buffer_len + ring_capacity = %d"
         rank_err_max relax_bound);
  (match phase with
  | Ring_ingress ->
      (* The phase is pointless if inserts bypassed the ring, and any
         resident left after unregister+drain is a stranded element. *)
      if (Q.Debug.counters q).Zmsq.ring_pushes = 0 then
        violation "ring-ingress: no insert ever claimed a ring slot";
      if Q.Debug.ring_resident q <> 0 then
        violation
          (Printf.sprintf "ring-ingress: %d elements stranded in the ring after drain"
             (Q.Debug.ring_resident q))
  | _ -> ());
  log
    (Printf.sprintf "done in %.2fs: inserted=%d extracted=%d drained=%d \
                     reclaimed=%d sleeps=%d wakes=%d qos=%d rank_err_max=%.0f \
                     violations=%d"
       seconds ins ext !drained reclaimed ec_sleeps ec_wakes qos_samples
       rank_err_max (List.length !vios));
  ( {
      phase;
      seconds;
      inserted = ins;
      extracted = ext;
      drained = !drained;
      reclaimed;
      ec_sleeps;
      ec_wakes;
      qos_samples;
      rank_err_max;
      rank_gap_p99;
      sojourn_p99_ns;
      violations = List.rev !vios;
    },
    !artifacts )

(* Shard-churn: the sharded build under the same fault adapter. Producers
   are sticky inserters that migrate — each periodically retires its handle
   (a fraction via [orphan], abandoning staged buffers for the scavenger)
   and registers a fresh one — while injected trylock losses force extra
   sticky re-rolls through the contention hint. Consumers run two-choice
   extraction. Watchdogs: conservation, staleness, drain exactness on
   every shard, zero staged residue, and the sampled rank error against
   the {e sharded} relaxation bound ({!Accuracy.sharded_bound}), merged
   across the per-shard QoS histograms. *)
let run_shard_phase cfg ~index ~phase ~dur =
  let log s =
    match cfg.log with
    | Some f -> f (Printf.sprintf "[soak %-16s] %s" (phase_name phase) s)
    | None -> ()
  in
  let f = cfg.faults in
  FP.Ctl.reset ();
  FP.Ctl.install
    {
      Faulty.seed = cfg.seed lxor ((index + 1) * 0x9E37);
      trylock_fail_1in = f.trylock_fail_1in;
      wake_delay_1in = f.wake_delay_1in;
      wake_delay_ops = f.wake_delay_ops;
      spurious_timeout_1in = f.spurious_timeout_1in;
      stall_faa_1in = f.stall_faa_1in;
      stall_exchange_1in = f.stall_exchange_1in;
      stall_relax = f.stall_relax;
      io_short_1in = f.io_short_1in;
      io_stall_1in = f.io_stall_1in;
      io_drop_1in = f.io_drop_1in;
      io_torn_1in = f.io_torn_1in;
    };
  let params =
    Zmsq.Params.validate
      {
        Zmsq.Params.default with
        batch = cfg.batch;
        buffer_len = cfg.buffer_len;
        blocking = true;
        shards = cfg.shards;
        (* Short sticky windows: re-rolls must actually churn while the
           phase runs, not only when a trylock loss trips the hint. *)
        stickiness = 4;
        seed = Some cfg.seed;
        obs = Zmsq_obs.Level.Full;
        obs_sample_shift = 4;
      }
  in
  let q = SQ.create ~params () in
  let stop = Stdlib.Atomic.make false in
  let inserted = Stdlib.Atomic.make 0 in
  let extracted = Stdlib.Atomic.make 0 in
  let producer_keys = Array.make (max 1 cfg.producers) (-1) in
  let vio_mu = Stdlib.Mutex.create () in
  let vios = ref [] in
  let artifacts = ref [] in
  let dumped = ref false in
  let violation msg =
    Stdlib.Mutex.lock vio_mu;
    Fun.protect
      ~finally:(fun () -> Stdlib.Mutex.unlock vio_mu)
      (fun () ->
        vios := msg :: !vios;
        log ("VIOLATION: " ^ msg);
        match cfg.artifacts_dir with
        | Some dir when not !dumped ->
            dumped := true;
            mkdir_p dir;
            let snap = Zmsq_obs.Metrics.snapshot (SQ.metrics q) in
            let mpath =
              Zmsq_obs.Export.write_file
                ~path:(Filename.concat dir "soak-shard-churn-metrics.json")
                (Zmsq_obs.Json.to_string (Zmsq_obs.Export.json_of_snapshot snap))
            in
            artifacts :=
              (match SQ.trace q with
              | Some tr ->
                  [ mpath; Zmsq_obs.Trace.save ~path:(Filename.concat dir "soak-shard-churn-trace.json") tr ]
              | None -> [ mpath ])
        | _ -> ())
  in
  let bar = Barrier.create (cfg.producers + cfg.consumers + 2) in
  let rec register_fresh () =
    (* Hazard pressure: with [orphan]-leaked handles in flight a register
       may find a shard's table full; it must succeed after a scavenge. *)
    try SQ.register q
    with Invalid_argument _ ->
      ignore (SQ.reclaim_orphans q);
      register_fresh ()
  in
  let producer idx () =
    producer_keys.(idx) <- FP.Ctl.self_key ();
    let rng = Rng.create ~seed:(cfg.seed + (211 * idx) + 3) () in
    let h = ref (SQ.register q) in
    Barrier.wait bar;
    while not (Stdlib.Atomic.get stop) do
      Stdlib.Atomic.incr inserted;
      SQ.insert !h (Elt.of_priority (Rng.int rng 1_000_000));
      (* Migrate the sticky handle: most retire cleanly, a fraction are
         abandoned mid-stick with whatever stayed staged — conservation
         then depends on the outer-then-inner orphan reclamation. *)
      if Rng.int rng 96 = 0 then begin
        (if Rng.int rng 4 = 0 then SQ.orphan !h else SQ.unregister !h);
        h := register_fresh ()
      end;
      if Rng.int rng 512 = 0 then Unix.sleepf 0.0002
    done;
    match SQ.handle_state !h with Zmsq.Live -> SQ.unregister !h | _ -> ()
  in
  let consumer _idx () =
    let h = SQ.register q in
    Barrier.wait bar;
    while not (Stdlib.Atomic.get stop) do
      let v = SQ.extract_timeout h ~timeout_ns:2_000_000 in
      if not (Elt.is_none v) then Stdlib.Atomic.incr extracted
    done;
    SQ.unregister h
  in
  let monitor () =
    FP.Ctl.exempt_self ();
    Barrier.wait bar;
    let stale_ns = int_of_float (cfg.stale_ms *. 1e6) in
    let start = now_ns () in
    let anchor = ref start in
    let last_ext = ref 0 in
    let next_beat = ref (start + 500_000_000) in
    let freeze_due =
      if f.freeze_ms > 0. then Some (start + int_of_float (dur *. 0.4 *. 1e9)) else None
    in
    let frozen = ref None in
    while not (Stdlib.Atomic.get stop) do
      Unix.sleepf 0.002;
      FP.Ctl.quiesce ();
      let now = now_ns () in
      let ext = Stdlib.Atomic.get extracted in
      let ins = Stdlib.Atomic.get inserted in
      if ext > ins then
        violation (Printf.sprintf "conservation: extracted %d > inserted %d" ext ins);
      if ext <> !last_ext then begin
        last_ext := ext;
        anchor := now
      end;
      if SQ.length q = 0 then anchor := now;
      (match (freeze_due, !frozen) with
      | Some due, None when now >= due && producer_keys.(min 1 (cfg.producers - 1)) >= 0
        ->
          (* Freeze a sticky producer mid-stick: its current shard may hold
             staged elements and a mid-flush lock, and the other shards must
             keep the phase live until the thaw. *)
          let victim = producer_keys.(min 1 (cfg.producers - 1)) in
          FP.Ctl.freeze victim;
          frozen := Some (victim, now + int_of_float (f.freeze_ms *. 1e6))
      | _ -> ());
      (match !frozen with
      | Some (victim, until) when now >= until ->
          FP.Ctl.thaw victim;
          frozen := Some (victim, max_int);
          anchor := now
      | _ -> ());
      if now - !anchor > stale_ns then begin
        violation
          (Printf.sprintf
             "stale element: %d published elements but no extraction progress in \
              %.0f ms"
             (SQ.length q) cfg.stale_ms);
        anchor := now
      end;
      if now >= !next_beat then begin
        next_beat := now + 500_000_000;
        log
          (Printf.sprintf "heartbeat: inserted=%d extracted=%d sizes=[%s] buffered=%d"
             ins ext
             (String.concat ";"
                (Array.to_list (Array.map string_of_int (SQ.shard_sizes q))))
             (SQ.Debug.buffered q))
      end
    done;
    (match !frozen with
    | Some (victim, _) -> FP.Ctl.thaw victim
    | None -> ());
    FP.Ctl.quiesce ()
  in
  let t0 = now_ns () in
  let doms =
    List.init cfg.producers (fun i -> Domain.spawn (producer i))
    @ List.init cfg.consumers (fun i -> Domain.spawn (consumer i))
  in
  let mon = Domain.spawn monitor in
  let hmain = SQ.register q in
  Barrier.wait bar;
  Unix.sleepf dur;
  Stdlib.Atomic.set stop true;
  Domain.join mon;
  List.iter Domain.join doms;
  FP.Ctl.quiesce ();
  let seconds = float_of_int (now_ns () - t0) /. 1e9 in
  ignore (SQ.reclaim_orphans q);
  let drained = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let v = SQ.extract hmain in
    if Elt.is_none v then continue_ := false else incr drained
  done;
  let ins = Stdlib.Atomic.get inserted in
  let ext = Stdlib.Atomic.get extracted in
  if ins <> ext + !drained then
    violation
      (Printf.sprintf "conservation: inserted %d <> extracted %d + drained %d" ins
         ext !drained);
  (* Drain exactness per shard: an "empty" sharded queue means every shard
     is exactly empty, not just the two shards the last extraction probed. *)
  Array.iteri
    (fun i sz ->
      if sz <> 0 then
        violation (Printf.sprintf "drain exactness: shard %d still holds %d elements" i sz))
    (SQ.shard_sizes q);
  if SQ.Debug.buffered q <> 0 then
    violation
      (Printf.sprintf "staged residue after unregister+reclaim+drain: %d"
         (SQ.Debug.buffered q));
  if not (SQ.Debug.check_invariant q) then violation "tree invariant check failed";
  (* Zero-budget final poll, as in the single-queue phases, through the
     two-choice path. *)
  SQ.insert hmain (Elt.of_priority 7);
  SQ.flush hmain;
  let probe = SQ.extract_timeout hmain ~timeout_ns:0 in
  if Elt.is_none probe then
    violation "final poll: zero-budget extract_timeout missed a present element";
  SQ.unregister hmain;
  if SQ.Debug.live_handles q <> 0 then
    violation
      (Printf.sprintf "handle registry leak: %d handles survive teardown"
         (SQ.Debug.live_handles q));
  let outer = Zmsq_obs.Metrics.snapshot (SQ.metrics q) in
  let outer_counter name =
    try List.assoc name outer.Zmsq_obs.Metrics.counters with Not_found -> 0
  in
  if cfg.shards > 1 && outer_counter "shard_rerolls_total" = 0 then
    violation "sticky routing never re-rolled despite injected trylock losses";
  let reclaimed = (SQ.Debug.counters q).Zmsq.orphan_reclaims in
  let ec_sleeps, ec_wakes =
    match SQ.Debug.eventcount_stats q with Some (s, w) -> (s, w) | None -> (0, 0)
  in
  (* QoS telemetry lives in the inner queues; merge the per-shard
     histograms and gate the worst sampled rank error against the sharded
     bound — each shard's own window widened by the other shards' content
     plus the two-choice selection slack. *)
  let module Hist = Zmsq_util.Stats.Histogram in
  let snaps =
    Array.to_list (Array.map Zmsq_obs.Metrics.snapshot (SQ.shard_metrics q))
  in
  let sum_counter name =
    List.fold_left
      (fun acc s ->
        acc + (try List.assoc name s.Zmsq_obs.Metrics.counters with Not_found -> 0))
      0 snaps
  in
  let merge_hist name f =
    List.fold_left
      (fun acc s ->
        match List.assoc_opt name s.Zmsq_obs.Metrics.hists with
        | Some h -> Float.max acc (f h)
        | None -> acc)
      0.0 snaps
  in
  let qos_samples = sum_counter "qos_samples_total" in
  let rank_err_max = merge_hist "rank_error_sampled" Hist.max_value in
  let rank_gap_p99 = merge_hist "rank_gap_keys" (fun h -> Hist.percentile h 99.0) in
  let sojourn_p99_ns = merge_hist "sojourn_ns" (fun h -> Hist.percentile h 99.0) in
  let relax_bound =
    (* The shard-churn phase runs with the ingress ring off
       ([ring_capacity] defaults to 0); ring-ingress is a dedicated
       single-queue phase. *)
    Accuracy.sharded_bound ~shards:cfg.shards ~batch:cfg.batch
      ~ndomains:(cfg.producers + cfg.consumers + 1)
      ~buffer_len:cfg.buffer_len ()
  in
  if qos_samples > 0 && rank_err_max > float_of_int relax_bound then
    violation
      (Printf.sprintf
         "relaxation bound: sampled rank error %.0f exceeds the sharded bound \
          shards*(batch + ndomains*buffer_len) + slack = %d"
         rank_err_max relax_bound);
  log
    (Printf.sprintf
       "done in %.2fs: inserted=%d extracted=%d drained=%d reclaimed=%d \
        rerolls=%d two_choice=%d sweeps=%d qos=%d rank_err_max=%.0f violations=%d"
       seconds ins ext !drained reclaimed
       (outer_counter "shard_rerolls_total")
       (outer_counter "shard_two_choice_total")
       (outer_counter "shard_fallback_sweeps_total")
       qos_samples rank_err_max (List.length !vios));
  ( {
      phase;
      seconds;
      inserted = ins;
      extracted = ext;
      drained = !drained;
      reclaimed;
      ec_sleeps;
      ec_wakes;
      qos_samples;
      rank_err_max;
      rank_gap_p99;
      sojourn_p99_ns;
      violations = List.rev !vios;
    },
    !artifacts )


(* Server-overload: the whole network stack — lib/net's socket front-end
   over the sharded FP-faulted build — pushed past its admission ladder.
   Producer batches (128/RPC) outweigh consumer extracts (16/RPC), so
   backlog climbs through Throttle/Shed into Reject and the clients ride
   retry/backoff. The phase runs two halves over one server: a clean
   half (prim faults only) and a wire-faulted half (short reads, stalls,
   severed connections, torn frames on both sides of every socket), then
   a SIGTERM-style graceful drain. The fault-exempt monitor asserts
   element conservation and shed accounting from the server's own
   counters while the overload runs; teardown asserts the exact
   identities, drain-to-emptiness, zero leaked handles, that the ladder
   actually engaged, that wire faults actually fired, and that the
   faulted half's RPC p99 stayed within 2x of the clean half's (no
   retry storm). *)
module NetSrv = Zmsq_net.Server.Make (SQ)

let run_server_phase cfg ~index ~phase ~dur =
  let log s =
    match cfg.log with
    | Some f -> f (Printf.sprintf "[soak %-16s] %s" (phase_name phase) s)
    | None -> ()
  in
  let f = cfg.faults in
  let install ~io =
    FP.Ctl.install
      {
        Faulty.seed = cfg.seed lxor ((index + 1) * 0xC2B2);
        trylock_fail_1in = f.trylock_fail_1in;
        wake_delay_1in = f.wake_delay_1in;
        wake_delay_ops = f.wake_delay_ops;
        spurious_timeout_1in = f.spurious_timeout_1in;
        stall_faa_1in = f.stall_faa_1in;
        stall_exchange_1in = f.stall_exchange_1in;
        stall_relax = f.stall_relax;
        io_short_1in = (if io then f.io_short_1in else 0);
        io_stall_1in = (if io then f.io_stall_1in else 0);
        io_drop_1in = (if io then f.io_drop_1in else 0);
        io_torn_1in = (if io then f.io_torn_1in else 0);
      }
  in
  FP.Ctl.reset ();
  install ~io:false;
  let params =
    Zmsq.Params.validate
      {
        Zmsq.Params.default with
        batch = cfg.batch;
        buffer_len = cfg.buffer_len;
        blocking = true;
        shards = cfg.shards;
        stickiness = 8;
        seed = Some cfg.seed;
        obs = Zmsq_obs.Level.Full;
        obs_sample_shift = 4;
      }
  in
  let q = SQ.create ~params () in
  let scfg =
    {
      NetSrv.default_config with
      NetSrv.workers = 2;
      max_conns = 32;
      inflight_window = 8;
      (* A low high-water mark so the flood provably climbs the whole
         ladder within the phase budget. *)
      max_elts_inflight = 512;
      tick_ms = 1.0;
      idle_slice_ns = 500_000;
      fault = Some FP.Ctl.inject_io;
    }
  in
  let srv =
    NetSrv.create ~config:scfg ~q
      ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
      ()
  in
  let vio_mu = Stdlib.Mutex.create () in
  let vios = ref [] in
  let artifacts = ref [] in
  let dumped = ref false in
  let violation msg =
    Stdlib.Mutex.lock vio_mu;
    Fun.protect
      ~finally:(fun () -> Stdlib.Mutex.unlock vio_mu)
      (fun () ->
        vios := msg :: !vios;
        log ("VIOLATION: " ^ msg);
        match cfg.artifacts_dir with
        | Some dir when not !dumped ->
            dumped := true;
            mkdir_p dir;
            let dump name m =
              Zmsq_obs.Export.write_file
                ~path:(Filename.concat dir name)
                (Zmsq_obs.Json.to_string
                   (Zmsq_obs.Export.json_of_snapshot (Zmsq_obs.Metrics.snapshot m)))
            in
            artifacts :=
              [
                dump "soak-server-overload-queue-metrics.json" (SQ.metrics q);
                dump "soak-server-overload-server-metrics.json" (NetSrv.metrics srv);
              ]
        | _ -> ())
  in
  let counters () =
    let snap = Zmsq_obs.Metrics.snapshot (NetSrv.metrics srv) in
    fun name ->
      match List.assoc_opt name snap.Zmsq_obs.Metrics.counters with
      | Some n -> n
      | None -> 0
  in
  let refused_of c =
    c "rpc_throttled_total" + c "rpc_shed_total" + c "rpc_rejected_total"
    + c "rpc_deadline_expired_total" + c "rpc_closed_total" + c "rpc_bad_request_total"
  in
  let stop_mon = Stdlib.Atomic.make false in
  let monitor () =
    FP.Ctl.exempt_self ();
    let stale_ns = int_of_float (cfg.stale_ms *. 1e6) in
    let anchor = ref (now_ns ()) in
    let last_progress = ref 0 in
    let next_beat = ref (now_ns () + 500_000_000) in
    while not (Stdlib.Atomic.get stop_mon) do
      Unix.sleepf 0.002;
      FP.Ctl.quiesce ();
      let now = now_ns () in
      let c = counters () in
      let applied = c "elts_applied_total" in
      let extracted = c "elts_extracted_total" + c "elts_drained_shutdown_total" in
      (* Conservation, mid-flight: the server can never have handed out
         more elements than admission applied. ([applied] is bumped
         before the insert publishes, so this direction is exact.) *)
      if extracted > applied then
        violation
          (Printf.sprintf "conservation: extracted+drained %d > applied %d" extracted
             applied);
      (* Shed accounting, mid-flight (the loose direction; the exact
         identity is asserted at quiescence): terminal outcomes can
         never exceed admissions. *)
      let outcomes = c "rpc_completed_total" + refused_of c + c "rpc_dropped_total" in
      if outcomes > c "rpc_accepted_total" then
        violation
          (Printf.sprintf "shed accounting: %d outcomes > %d accepted" outcomes
             (c "rpc_accepted_total"));
      if extracted <> !last_progress then begin
        last_progress := extracted;
        anchor := now
      end;
      if SQ.length q = 0 then anchor := now;
      if now - !anchor > stale_ns then begin
        violation
          (Printf.sprintf
             "stale element: %d queued elements but no extraction progress in %.0f ms"
             (SQ.length q) cfg.stale_ms);
        anchor := now
      end;
      if now >= !next_beat then begin
        next_beat := now + 500_000_000;
        log
          (Printf.sprintf "heartbeat: level=%s accepted=%d completed=%d refused=%d qlen=%d"
             (NetSrv.level_name (NetSrv.level srv))
             (c "rpc_accepted_total") (c "rpc_completed_total") (refused_of c)
             (SQ.length q))
      end
    done;
    FP.Ctl.quiesce ()
  in
  let t0 = now_ns () in
  let mon = Domain.spawn monitor in
  let lg_base =
    {
      Zmsq_net.Loadgen.default_config with
      Zmsq_net.Loadgen.producers = cfg.producers;
      consumers = cfg.consumers;
      duration_s = dur *. 0.45;
      batch = 128;
      extract_n = 16;
      insert_budget_ns = 50_000_000;
      extract_budget_ns = 20_000_000;
      retry =
        {
          Zmsq_net.Retry.base_ns = 500_000;
          cap_ns = 20_000_000;
          max_attempts = 6;
          budget_ns = 150_000_000;
        };
      seed = cfg.seed + (index * 131);
    }
  in
  let addr = NetSrv.sockaddr srv in
  let clean = Zmsq_net.Loadgen.run { lg_base with Zmsq_net.Loadgen.fault = None } addr in
  let io_stats0 = FP.Ctl.stats () in
  install ~io:true;
  let faulted =
    Zmsq_net.Loadgen.run
      {
        lg_base with
        Zmsq_net.Loadgen.seed = lg_base.Zmsq_net.Loadgen.seed + 77;
        fault = Some FP.Ctl.inject_io;
      }
      addr
  in
  let io_fired = diff_stats io_stats0 (FP.Ctl.stats ()) in
  Stdlib.Atomic.set stop_mon true;
  Domain.join mon;
  (* SIGTERM path: drain to exact emptiness end-to-end. *)
  NetSrv.shutdown srv;
  FP.Ctl.quiesce ();
  let seconds = float_of_int (now_ns () - t0) /. 1e9 in
  let c = counters () in
  let applied = c "elts_applied_total" in
  let extracted = c "elts_extracted_total" in
  let drained = c "elts_drained_shutdown_total" in
  if applied <> extracted + drained then
    violation
      (Printf.sprintf "conservation: applied %d <> extracted %d + drained %d" applied
         extracted drained);
  let outcomes = c "rpc_completed_total" + refused_of c + c "rpc_dropped_total" in
  if c "rpc_accepted_total" <> outcomes then
    violation
      (Printf.sprintf "shed accounting at quiescence: accepted %d <> outcomes %d"
         (c "rpc_accepted_total") outcomes);
  if SQ.lifecycle q <> Zmsq.Closed then violation "drain did not close the queue";
  Array.iteri
    (fun i sz ->
      if sz <> 0 then
        violation (Printf.sprintf "drain exactness: shard %d still holds %d elements" i sz))
    (SQ.shard_sizes q);
  if SQ.Debug.buffered q <> 0 then
    violation
      (Printf.sprintf "staged residue after drain: %d" (SQ.Debug.buffered q));
  if SQ.Debug.live_handles q <> 0 then
    violation
      (Printf.sprintf "handle registry leak: %d handles survive shutdown"
         (SQ.Debug.live_handles q));
  if refused_of c - c "rpc_deadline_expired_total" - c "rpc_closed_total"
     - c "rpc_bad_request_total" = 0
  then violation "overload never engaged the ladder (no throttle/shed/reject)";
  (let fired k = try List.assoc k io_fired with Not_found -> 0 in
   if
     f.io_short_1in > 0
     && fired "io_shorts" + fired "io_stalls" + fired "io_drops" + fired "io_torn" = 0
   then violation "wire faults armed but never fired");
  (* Retry-storm guard: backoff must absorb the wire faults. The floor
     soaks up sub-RPC-granularity scheduler noise; above it, a faulted
     p99 more than one power-of-two bucket over clean means clients are
     hammering instead of backing off. *)
  let module Hist = Zmsq_util.Stats.Histogram in
  let clean_p99 = Hist.percentile clean.Zmsq_net.Loadgen.rpc_ns 99.0 in
  let faulted_p99 = Hist.percentile faulted.Zmsq_net.Loadgen.rpc_ns 99.0 in
  if
    Hist.count clean.Zmsq_net.Loadgen.rpc_ns > 50
    && Hist.count faulted.Zmsq_net.Loadgen.rpc_ns > 50
    && faulted_p99 > 2.0 *. Float.max clean_p99 5e6
  then
    violation
      (Printf.sprintf "retry storm: faulted p99 %.0f ns > 2x clean p99 %.0f ns"
         faulted_p99 clean_p99);
  let reclaimed = (SQ.Debug.counters q).Zmsq.orphan_reclaims in
  let ec_sleeps, ec_wakes =
    match SQ.Debug.eventcount_stats q with Some (s, w) -> (s, w) | None -> (0, 0)
  in
  let snaps =
    Array.to_list (Array.map Zmsq_obs.Metrics.snapshot (SQ.shard_metrics q))
  in
  let sum_counter name =
    List.fold_left
      (fun acc s ->
        acc + (try List.assoc name s.Zmsq_obs.Metrics.counters with Not_found -> 0))
      0 snaps
  in
  let merge_hist name fn =
    List.fold_left
      (fun acc s ->
        match List.assoc_opt name s.Zmsq_obs.Metrics.hists with
        | Some h -> Float.max acc (fn h)
        | None -> acc)
      0.0 snaps
  in
  log
    (Printf.sprintf
       "done in %.2fs: applied=%d extracted=%d drained=%d accepted=%d refused=%d \
        orphaned_conns=%d clean_p99=%.0fns faulted_p99=%.0fns gave_up=%d+%d \
        violations=%d"
       seconds applied extracted drained (c "rpc_accepted_total") (refused_of c)
       (c "conn_orphaned_total") clean_p99 faulted_p99
       clean.Zmsq_net.Loadgen.gave_up faulted.Zmsq_net.Loadgen.gave_up
       (List.length !vios));
  ( {
      phase;
      seconds;
      inserted = applied;
      extracted;
      drained;
      reclaimed;
      ec_sleeps;
      ec_wakes;
      qos_samples = sum_counter "qos_samples_total";
      rank_err_max = merge_hist "rank_error_sampled" Hist.max_value;
      rank_gap_p99 = merge_hist "rank_gap_keys" (fun h -> Hist.percentile h 99.0);
      sojourn_p99_ns = merge_hist "sojourn_ns" (fun h -> Hist.percentile h 99.0);
      violations = List.rev !vios;
    },
    !artifacts )

let run cfg =
  if cfg.producers < 1 || cfg.consumers < 1 then invalid_arg "Soak.run: need workers";
  if cfg.secs <= 0. then invalid_arg "Soak.run: secs must be positive";
  if cfg.phases = [] then invalid_arg "Soak.run: need at least one phase";
  if cfg.shards < 1 then invalid_arg "Soak.run: shards must be >= 1";
  let stats0 = FP.Ctl.stats () in
  let dur = cfg.secs /. float_of_int (List.length cfg.phases) in
  let phases, artifacts =
    List.split
      (List.mapi
         (fun index phase ->
           match phase with
           | Shard_churn -> run_shard_phase cfg ~index ~phase ~dur
           | Server_overload -> run_server_phase cfg ~index ~phase ~dur
           | _ -> run_phase cfg ~index ~phase ~dur)
         cfg.phases)
  in
  let fault_stats = diff_stats stats0 (FP.Ctl.stats ()) in
  FP.Ctl.reset ();
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 phases in
  {
    phases;
    total_inserted = sum (fun p -> p.inserted);
    total_extracted = sum (fun p -> p.extracted);
    total_drained = sum (fun p -> p.drained);
    fault_stats;
    violations =
      List.concat_map
        (fun p -> List.map (fun v -> phase_name p.phase ^ ": " ^ v) p.violations)
        phases;
    artifacts = List.concat artifacts;
  }

let report_lines (r : report) =
  List.map
    (fun p ->
      Printf.sprintf
        "%-16s %5.2fs inserted=%-8d extracted=%-8d drained=%-6d reclaimed=%-4d \
         sleeps=%-6d wakes=%-6d qos=%-5d rank_err_max=%-3.0f rank_gap_p99=%-6.0f \
         sojourn_p99=%.0fns violations=%d"
        (phase_name p.phase) p.seconds p.inserted p.extracted p.drained p.reclaimed
        p.ec_sleeps p.ec_wakes p.qos_samples p.rank_err_max p.rank_gap_p99
        p.sojourn_p99_ns
        (List.length p.violations))
    r.phases
  @ [
      Printf.sprintf "totals: inserted=%d extracted=%d drained=%d" r.total_inserted
        r.total_extracted r.total_drained;
      "faults: "
      ^ String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.fault_stats);
      (match r.violations with
      | [] -> "violations: none"
      | vs -> Printf.sprintf "violations: %d" (List.length vs));
    ]
