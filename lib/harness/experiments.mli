(** The experiment registry: one entry per table/figure of the paper's
    evaluation (plus ablations). [bench/main.exe] and [bin/zmsq_cli] both
    drive this.

    Scaling: op counts are multiplied by [$ZMSQ_BENCH_SCALE] ("quick" =
    0.05 default, "full" = 1.0 = paper-size); thread sweeps come from
    [$ZMSQ_BENCH_THREADS] (default "1,2,4,8" — the container is
    single-core, so higher counts exercise oversubscription, not
    parallel speedup; see DESIGN.md). *)

type t = {
  id : string;
  title : string;
  paper : string;  (** which figure/table of the paper this regenerates *)
  run : unit -> Table.t list;
}

val all : t list
(** Registry in presentation order: fig2a..fig8, stable, ablations. *)

val find : string -> t option

val run_one : ?csv_dir:string -> t -> unit
(** Run, print every produced table, save CSVs, and write a machine-
    readable [<dir>/<id>.json] (default directory [results/]) holding the
    tables, the experiment's wall-clock cost, and a merged
    [Zmsq_obs.Metrics] snapshot of every queue the run created. *)
