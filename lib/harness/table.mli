(** ASCII tables mirroring the paper's figures/tables, plus CSV export. *)

type t = { id : string; title : string; notes : string list; header : string list; rows : string list list }

val make :
  id:string -> title:string -> ?notes:string list -> header:string list -> string list list -> t

val print : t -> unit
(** Render to stdout with aligned columns. *)

val to_csv : t -> string

val save_csv : dir:string -> t -> string
(** Writes [<dir>/<id>.csv], creating [dir] if needed; returns the path. *)

val to_json : t -> Zmsq_obs.Json.t
(** Structured rendering; numeric-looking cells become JSON numbers. *)

val save_json : dir:string -> t -> string
(** Writes [<dir>/<id>.json], creating [dir] if needed; returns the path. *)

val cell_f : float -> string
(** Numeric cell with 3 significant digits. *)

val cell_i : int -> string
