(** Fixed-shape, fixed-seed performance experiments for the per-PR
    regression CI (driven by [bin/zmsq_perfci]).

    The suite runs a pinned subset of the registry's shapes — fig5a
    throughput, the fig4 blocking handoff, the insert-buffer experiment,
    the sharded insert-heavy gate and the FAA ingress-ring insert gate
    (floor-limited, so rerouting inserts off the lock-free path fails
    even against a fresh baseline) — plus a single-thread roofline (ZMSQ
    vs {!Zmsq_pq.Binary_heap} pair latency, gated as a
    machine-independent ratio) and the full-observability overhead
    measurement. Results are compared against
    a committed baseline ([results/perf-baseline.json]) with generous
    per-experiment thresholds sized for shared-runner noise; the baseline
    may override any threshold. See OBSERVABILITY.md for the re-blessing
    workflow. *)

val schema : string
(** Schema tag carried by both the report and the baseline
    ("zmsq-perfci/1"); comparison refuses a baseline with any other. *)

type result = {
  id : string;
  value : float;  (** the headline metric *)
  unit_ : string;
  higher_better : bool;
  threshold_pct : float;  (** default regression threshold *)
  limit : float option;  (** absolute cap, for limit-gated metrics *)
  wall_seconds : float;
  details : (string * Zmsq_obs.Json.t) list;
}

type comparison = {
  cmp_id : string;
  cmp_value : float;
  cmp_baseline : float option;  (** [None]: absent from the baseline *)
  cmp_delta_pct : float option;
  cmp_threshold_pct : float;  (** baseline override, or the default *)
  cmp_ok : bool;
}

val experiment_ids : unit -> string list

val run_all : ?only:(string -> bool) -> scale:float -> unit -> result list
(** Run the suite in order; [scale] multiplies op counts (1.0 = the CI
    push shape, nightly uses larger). [only] filters by experiment id. *)

val load_baseline : string -> ((string * float * float option) list, string) Stdlib.result
(** [(id, value, threshold_override)] triples from a baseline file;
    [Error] on missing file, parse failure, or schema mismatch. *)

val compare_all : (string * float * float option) list -> result list -> comparison list
(** An experiment regresses when its delta vs baseline exceeds the
    threshold in the harmful direction, or its value exceeds its absolute
    [limit]. Experiments missing from the baseline compare as ok (they
    gate only via [limit]). *)

val report_json :
  ?id:string ->
  scale:float ->
  baseline_file:string ->
  results:result list ->
  comparisons:comparison list option ->
  unit ->
  Zmsq_obs.Json.t
(** The schema-versioned BENCH_pr6.json document. [id] (default
    ["pr6"], the CI gate's identity) names trajectory snapshots like
    BENCH_pr9.json. *)

val baseline_json : result list -> Zmsq_obs.Json.t
(** A fresh baseline blessing the given results. *)
