type t = {
  id : string;
  title : string;
  notes : string list;
  header : string list;
  rows : string list list;
}

let make ~id ~title ?(notes = []) ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg (Printf.sprintf "Table %s: row width mismatch" id))
    rows;
  { id; title; notes; header; rows }

let print t =
  let all = t.header :: t.rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let line ch =
    print_string "+";
    Array.iter
      (fun w ->
        print_string (String.make (w + 2) ch);
        print_string "+")
      widths;
    print_newline ()
  in
  let row cells =
    print_string "|";
    List.iteri
      (fun i cell -> Printf.printf " %-*s |" widths.(i) cell)
      cells;
    print_newline ()
  in
  Printf.printf "\n== %s: %s ==\n" t.id t.title;
  List.iter (fun n -> Printf.printf "   %s\n" n) t.notes;
  line '-';
  row t.header;
  line '=';
  List.iter row t.rows;
  line '-';
  flush stdout

let quote_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map quote_csv cells));
    Buffer.add_char buf '\n'
  in
  row t.header;
  List.iter row t.rows;
  Buffer.contents buf

let save_csv ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (t.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc;
  path

let to_json t =
  let open Zmsq_obs.Json in
  Obj
    [
      ("id", Str t.id);
      ("title", Str t.title);
      ("notes", Arr (List.map (fun n -> Str n) t.notes));
      ("header", Arr (List.map (fun h -> Str h) t.header));
      ( "rows",
        Arr
          (List.map
             (fun row ->
               (* Cells are pre-rendered strings; re-typing numeric ones
                  keeps the JSON consumable without string parsing. *)
               Arr
                 (List.map
                    (fun cell ->
                      match int_of_string_opt cell with
                      | Some i -> Int i
                      | None -> (
                          match float_of_string_opt cell with
                          | Some f -> Float f
                          | None -> Str cell))
                    row))
             t.rows) );
    ]

let save_json ~dir t =
  Zmsq_obs.Export.write_file
    ~path:(Filename.concat dir (t.id ^ ".json"))
    (Zmsq_obs.Json.to_string (to_json t))

let cell_f v =
  if Float.is_integer v && Float.abs v < 1e6 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.3g" v
  else Printf.sprintf "%.3g" v

let cell_i = string_of_int
