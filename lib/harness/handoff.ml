module Rng = Zmsq_util.Rng
module Elt = Zmsq_pq.Elt
module Timing = Zmsq_util.Timing
module Q = Zmsq.Default

type mode = Spin | Block

type spec = { producers : int; consumers : int; handoffs : int; batch : int; seed : int }

type result = {
  mean_latency_ns : float;
  p99_latency_ns : float;
  p999_latency_ns : float;
  max_latency_ns : float;
  wall_seconds : float;
  cpu_seconds : float;
  sleeps : int;
  wakes : int;
}

let poison_payload = (1 lsl Elt.payload_bits) - 1

let run mode spec =
  if spec.producers < 1 || spec.consumers < 1 || spec.handoffs < 1 then
    invalid_arg "Handoff.run";
  let params =
    {
      (Zmsq.Params.with_batch spec.batch Zmsq.Params.default) with
      Zmsq.Params.blocking = (mode = Block);
    }
  in
  let q = Q.create ~params () in
  let stamps = Array.init spec.handoffs (fun _ -> Atomic.make 0) in
  let next_item = Atomic.make 0 in
  let live_producers = Atomic.make spec.producers in
  let threads = spec.producers + spec.consumers in
  let cpu0 = Timing.cpu_seconds () in
  let results, wall =
    Runner.timed_parallel_pre ~threads
      ~setup:(fun tid -> (Q.register q, Rng.create ~seed:(spec.seed + tid) ()))
      ~run:(fun tid (h, rng) ->
        if tid < spec.producers then begin
          (* Producer: claim item indexes, stamp, insert. Backpressure keeps
             the queue short so the metric is handoff latency, not backlog
             residence time (essential on an oversubscribed machine). *)
          let high_water = 8 * (spec.producers + spec.consumers) in
          let rec produce () =
            let i = Atomic.fetch_and_add next_item 1 in
            if i < spec.handoffs then begin
              while Q.length q > high_water do
                Domain.cpu_relax ()
              done;
              Atomic.set stamps.(i) (Timing.now_ns ());
              Q.insert h (Elt.pack ~priority:(Rng.int rng (1 lsl 20)) ~payload:i);
              produce ()
            end
          in
          produce ();
          (* The last producer out poisons every consumer. *)
          if Atomic.fetch_and_add live_producers (-1) = 1 then
            for _ = 1 to spec.consumers do
              Q.insert h (Elt.pack ~priority:0 ~payload:poison_payload)
            done;
          Q.unregister h;
          Zmsq_util.Stats.Histogram.create ()
        end
        else begin
          let hist = Zmsq_util.Stats.Histogram.create () in
          let next () =
            match mode with
            | Block -> Q.extract_blocking h
            | Spin ->
                let rec spin () =
                  let e = Q.extract h in
                  if Elt.is_none e then begin
                    Domain.cpu_relax ();
                    spin ()
                  end
                  else e
                in
                spin ()
          in
          let rec consume () =
            let e = next () in
            if Elt.payload e <> poison_payload then begin
              let lat = Timing.now_ns () - Atomic.get stamps.(Elt.payload e) in
              Zmsq_util.Stats.Histogram.add hist (float_of_int (max 1 lat));
              consume ()
            end
          in
          consume ();
          Q.unregister h;
          hist
        end)
  in
  let cpu1 = Timing.cpu_seconds () in
  let hist =
    Array.fold_left Zmsq_util.Stats.Histogram.merge (Zmsq_util.Stats.Histogram.create ()) results
  in
  let sleeps, wakes =
    match Q.Debug.eventcount_stats q with Some sw -> sw | None -> (0, 0)
  in
  {
    mean_latency_ns = Zmsq_util.Stats.Histogram.mean hist;
    p99_latency_ns = Zmsq_util.Stats.Histogram.percentile hist 99.0;
    p999_latency_ns = Zmsq_util.Stats.Histogram.p999 hist;
    max_latency_ns = Zmsq_util.Stats.Histogram.max_value hist;
    wall_seconds = wall;
    cpu_seconds = cpu1 -. cpu0;
    sleeps;
    wakes;
  }
