module Keys = Zmsq_dist.Keys
module Env = Zmsq_util.Env
module P = Zmsq.Params

type t = { id : string; title : string; paper : string; run : unit -> Table.t list }

(* {2 Scaling helpers} *)

let scale () = Env.bench_scale ()
let scaled n = max 1000 (int_of_float (float_of_int n *. scale ()))
let threads () = Env.bench_threads ()
let repeats () = Env.int "ZMSQ_BENCH_RUNS" ~default:3

let normal_keys =
  Keys.Normal { mean = 524288.0; stddev = 65536.0; max_key = (1 lsl 20) - 1 }

let uniform_keys = Keys.Uniform { bits = 20 }

let row_f label values = label :: List.map Table.cell_f values

(* {2 Figure 2 — lock implementations} *)

let lock_factories params =
  [
    ("mutex", Instances.zmsq_mutex ~params ());
    ("tas", Instances.zmsq_tas ~params ());
    ("tatas", Instances.zmsq ~params ());
  ]

let fig2 ~insert_permil ~preload ~id ~title () =
  let params = P.static 32 in
  let ops = scaled 1_000_000 in
  let rows =
    List.map
      (fun t ->
        let spec =
          {
            Throughput.default_spec with
            Throughput.total_ops = ops;
            insert_permil;
            preload = (if preload then ops else 0);
            keys = normal_keys;
            threads = t;
          }
        in
        row_f (string_of_int t)
          (List.map (fun (_, f) -> Throughput.run_avg ~repeats:(repeats ()) f spec) (lock_factories params)))
      (threads ())
  in
  [
    Table.make ~id ~title
      ~notes:
        [
          Printf.sprintf "%d ops, batch=32 target_len=32, normal keys%s" ops
            (if preload then Printf.sprintf ", %d preloaded" ops else ", empty start");
          "values: Mops/s (higher is better)";
        ]
      ~header:[ "threads"; "mutex"; "tas"; "tatas" ]
      rows;
  ]

(* {2 Figure 3 — batch and target_len configurations} *)

let fig3_configs t =
  [
    ("dyn(1:1)", P.dynamic ~ratio_num:1 ~ratio_den:1 ~threads:t);
    ("dyn(1:1.5)", P.dynamic ~ratio_num:2 ~ratio_den:3 ~threads:t);
    ("dyn(1:2)", P.dynamic ~ratio_num:1 ~ratio_den:2 ~threads:t);
    ("dyn(2:1)", P.dynamic ~ratio_num:2 ~ratio_den:1 ~threads:t);
    ("static32", P.static 32);
    ("static64", P.static 64);
    ("static96", P.static 96);
  ]

let fig3 ~insert_permil ~preload ~id ~title () =
  let ops = scaled 1_000_000 in
  let headers = List.map fst (fig3_configs 1) in
  let rows =
    List.map
      (fun t ->
        let spec =
          {
            Throughput.default_spec with
            Throughput.total_ops = ops;
            insert_permil;
            preload = (if preload then ops else 0);
            keys = normal_keys;
            threads = t;
          }
        in
        row_f (string_of_int t)
          (List.map
             (fun (_, params) -> Throughput.run_avg ~repeats:(repeats ()) (Instances.zmsq ~params ()) spec)
             (fig3_configs t)))
      (threads ())
  in
  [
    Table.make ~id ~title
      ~notes:
        [
          Printf.sprintf "%d ops%s; dynamic configs: min(batch,target_len) = thread count" ops
            (if preload then ", preloaded" else ", empty start");
          "values: Mops/s";
        ]
      ~header:("threads" :: headers)
      rows;
  ]

(* {2 Table 1 — accuracy} *)

let zmsq_accuracy_factory batch =
  Instances.zmsq ~params:P.(default |> with_batch batch |> with_target_len 64) ()

let table1 ~qsize ~extract_counts ~id ~title () =
  let reps = if scale () >= 1.0 then repeats () else if qsize > 10_000 then 1 else 3 in
  let batches = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let spray_threads = [ 1; 2; 4; 8; 16; 32 ] in
  let measure factory t_ =
    List.map
      (fun extracts ->
        Accuracy.run_avg ~repeats:reps factory { Accuracy.qsize; extracts; threads = t_; seed = 0xACC })
      extract_counts
  in
  let header =
    "config"
    :: List.map
         (fun e -> Printf.sprintf "top %.3g%% (%d)" (float_of_int e /. float_of_int qsize *. 100.0) e)
         extract_counts
  in
  let zmsq_rows =
    List.map (fun b -> row_f (Printf.sprintf "zmsq batch=%d" b) (measure (zmsq_accuracy_factory b) 1)) batches
  in
  let spray_rows =
    List.map (fun t_ -> row_f (Printf.sprintf "spraylist T=%d" t_) (measure Instances.spraylist t_)) spray_threads
  in
  let fifo_row =
    row_f "fifo"
      (List.map
         (fun extracts ->
           Accuracy.fifo_baseline { Accuracy.qsize; extracts; threads = 1; seed = 0xACC })
         extract_counts)
  in
  [
    Table.make ~id ~title
      ~notes:
        [
          Printf.sprintf "queue preloaded with %d distinct keys; %% of extractions in true top-k" qsize;
          "zmsq: target_len=64, single thread (accuracy depends only on batch)";
          "spraylist: T concurrent extractors (accuracy degrades with T)";
        ]
      ~header
      (zmsq_rows @ spray_rows @ [ fifo_row ]);
  ]

(* {2 Figure 4 — blocking} *)

let fig4 () =
  let handoffs = scaled 1_000_000 in
  let producers = Env.int "ZMSQ_BENCH_PRODUCERS" ~default:4 in
  let consumers = Env.int_list "ZMSQ_BENCH_CONSUMERS" ~default:[ 2; 4; 8; 16 ] in
  let runs =
    List.map
      (fun c ->
        let spec = { Handoff.producers; consumers = c; handoffs; batch = 32; seed = 0xF4 } in
        (c, Handoff.run Handoff.Spin spec, Handoff.run Handoff.Block spec))
      consumers
  in
  let lat_rows =
    List.map
      (fun (c, spin, block) ->
        [
          Table.cell_i c;
          Table.cell_f spin.Handoff.mean_latency_ns;
          Table.cell_f block.Handoff.mean_latency_ns;
          Table.cell_f spin.Handoff.p99_latency_ns;
          Table.cell_f block.Handoff.p99_latency_ns;
          Table.cell_f spin.Handoff.p999_latency_ns;
          Table.cell_f block.Handoff.p999_latency_ns;
          Table.cell_f spin.Handoff.max_latency_ns;
          Table.cell_f block.Handoff.max_latency_ns;
          Table.cell_i block.Handoff.sleeps;
        ])
      runs
  in
  let cpu_rows =
    List.map
      (fun (c, spin, block) ->
        [
          Table.cell_i c;
          Table.cell_f spin.Handoff.cpu_seconds;
          Table.cell_f block.Handoff.cpu_seconds;
          Table.cell_f spin.Handoff.wall_seconds;
          Table.cell_f block.Handoff.wall_seconds;
        ])
      runs
  in
  [
    Table.make ~id:"fig4a" ~title:"handoff latency: spin vs block"
      ~notes:
        [
          Printf.sprintf "%d producers, %d handoffs, zmsq batch=32, empty start" producers handoffs;
          "values: ns per handoff (insert -> successful extract)";
        ]
      ~header:
        [
          "consumers";
          "spin mean";
          "block mean";
          "spin p99";
          "block p99";
          "spin p999";
          "block p999";
          "spin max";
          "block max";
          "futex sleeps";
        ]
      lat_rows;
    Table.make ~id:"fig4b" ~title:"CPU time: spin vs block"
      ~notes:[ "values: process CPU seconds (user+sys) for the whole transfer" ]
      ~header:[ "consumers"; "spin cpu"; "block cpu"; "spin wall"; "block wall" ]
      cpu_rows;
  ]

(* {2 Figure 5 — microbenchmark throughput} *)

let fig5_queues () =
  let params = P.(default |> with_batch 48 |> with_target_len 72) in
  [
    ("spraylist", Instances.spraylist);
    ("mound", Instances.mound);
    ("zmsq", Instances.zmsq ~params ());
    ("zmsq(array)", Instances.zmsq_array ~params ());
    ("zmsq(leak)", Instances.zmsq_leak ~params ());
  ]

let fig5 ~insert_permil ~preload ~keys ~id ~title () =
  let ops = scaled 2_000_000 in
  let queues = fig5_queues () in
  let rows =
    List.map
      (fun t ->
        let spec =
          {
            Throughput.default_spec with
            Throughput.total_ops = ops;
            insert_permil;
            preload = (if preload then ops / 2 else 0);
            keys;
            threads = t;
          }
        in
        row_f (string_of_int t)
          (List.map (fun (_, f) -> Throughput.run_avg ~repeats:(repeats ()) f spec) queues))
      (threads ())
  in
  [
    Table.make ~id ~title
      ~notes:
        [
          Printf.sprintf "%d ops, zmsq batch=48 target_len=72%s" ops
            (if preload then ", preloaded" else ", empty start");
          "values: Mops/s";
        ]
      ~header:("threads" :: List.map fst queues)
      rows;
  ]

(* {2 Figure 6 — producer/consumer ratios} *)

let fig6 () =
  let items = scaled 1_000_000 in
  let ratios = [ (1, 1); (2, 2); (4, 4); (2, 6); (6, 2); (1, 7); (7, 1) ] in
  let params = P.(default |> with_batch 48 |> with_target_len 72) in
  let queues =
    [ ("zmsq", Instances.zmsq ~params ()); ("mound", Instances.mound); ("spraylist", Instances.spraylist) ]
  in
  let rows =
    List.map
      (fun (p, c) ->
        Printf.sprintf "%dp/%dc" p c
        :: List.map
             (fun (_, f) ->
               let r =
                 Pc.run_avg ~repeats:(repeats ()) f
                   { Pc.producers = p; consumers = c; items; seed = 0xF6 }
               in
               Table.cell_f (r.Pc.transfers_per_sec /. 1e6))
             queues)
      ratios
  in
  [
    Table.make ~id:"fig6" ~title:"producer/consumer transfer throughput"
      ~notes:
        [
          Printf.sprintf "%d items through an initially empty queue; blocking disabled" items;
          "values: M transfers/s (higher is better)";
        ]
      ~header:("ratio" :: List.map fst queues)
      rows;
  ]

(* {2 Figures 7 and 8 — SSSP} *)

let sssp_queues () =
  let params = P.(default |> with_batch 42 |> with_target_len 64) in
  [
    ("zmsq", Instances.zmsq ~params ());
    ("zmsq(array)", Instances.zmsq_array ~params ());
    ("zmsq(leak)", Instances.zmsq_leak ~params ());
    ("spraylist", Instances.spraylist);
    ("mound", Instances.mound);
  ]

let sssp_table ~id ~title graph =
  let queues = sssp_queues () in
  let rows =
    List.map
      (fun t ->
        row_f (string_of_int t)
          (List.map
             (fun (_, f) ->
               let _, st = Sssp.run_checked f ~graph ~threads:t in
               st.Zmsq_graph.Sssp_parallel.wall_seconds *. 1000.0)
             queues))
      (threads ())
  in
  Table.make ~id ~title
    ~notes:
      [
        Printf.sprintf "graph: %d vertices, %d edges (BA stand-in; see DESIGN.md)"
          (Zmsq_graph.Csr.n_vertices graph)
          (Zmsq_graph.Csr.n_edges graph);
        "zmsq batch=42 target_len=64; values: milliseconds (lower is better)";
      ]
    ~header:("threads" :: List.map fst queues)
    rows

let fig7 () =
  let rng = Zmsq_util.Rng.create ~seed:0xF7 () in
  let artist = Zmsq_graph.Gen.artist rng in
  let politician = Zmsq_graph.Gen.politician rng in
  [
    sssp_table ~id:"fig7a" ~title:"SSSP on Artist (50K nodes)" artist;
    sssp_table ~id:"fig7b" ~title:"SSSP on Politician (6K nodes)" politician;
  ]

let fig8_configs =
  [ (8, 12); (16, 24); (32, 48); (42, 64); (48, 72); (64, 96); (32, 32) ]

let fig8 () =
  let rng = Zmsq_util.Rng.create ~seed:0xF8 () in
  let nodes =
    Env.int "ZMSQ_LJ_NODES"
      ~default:(min 1_000_000 (max 60_000 (int_of_float (2_000_000.0 *. scale ()))))
  in
  let graph = Zmsq_graph.Gen.livejournal ~nodes rng in
  (* The tuning comparison is across configs at a fixed thread count; in
     quick mode pick a modest one so 11 SSSP runs stay affordable. *)
  let sweep = if scale () >= 1.0 then threads () else [ 2 ] in
  let configs =
    List.map
      (fun (b, tl) ->
        (Printf.sprintf "zmsq(%d,%d)" b tl, Instances.zmsq ~params:P.(default |> with_batch b |> with_target_len tl) ()))
      fig8_configs
    @ [
        ("zmsq-leak(42,64)", Instances.zmsq_leak ~params:P.(default |> with_batch 42 |> with_target_len 64) ());
        ("zmsq-array(42,64)", Instances.zmsq_array ~params:P.(default |> with_batch 42 |> with_target_len 64) ());
        ("spraylist", Instances.spraylist);
        ("mound", Instances.mound);
      ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        name
        :: List.map
             (fun t ->
               let _, st = Sssp.run_checked f ~graph ~threads:t in
               Table.cell_f (st.Zmsq_graph.Sssp_parallel.wall_seconds *. 1000.0))
             sweep)
      configs
  in
  [
    Table.make ~id:"fig8" ~title:"SSSP tuning on LiveJournal stand-in"
      ~notes:
        [
          Printf.sprintf "graph: %d vertices, %d edges (paper: 3.8M-node LiveJournal)"
            (Zmsq_graph.Csr.n_vertices graph)
            (Zmsq_graph.Csr.n_edges graph);
          "values: milliseconds";
        ]
      ~header:("config" :: List.map string_of_int sweep)
      rows;
  ]

(* {2 Set-size stability (Section 3.2 claim)} *)

let stable () =
  let module Q = Zmsq.Default in
  let params = P.static 32 in
  let q = Q.create ~params () in
  let h = Q.register q in
  let rng = Zmsq_util.Rng.create ~seed:0x57AB () in
  let g = Keys.make rng normal_keys in
  let init = scaled 1_000_000 in
  let pairs = scaled 8_000_000 in
  let stats () =
    let counts = Q.Debug.node_counts q in
    let leaf = Q.Debug.leaf_level q in
    (* Non-leaf populated nodes only, as in the paper's measurement. *)
    let nonleaf_cap = (1 lsl leaf) - 1 in
    let nonleaf =
      Array.to_list counts |> List.filteri (fun i _ -> i < nonleaf_cap)
      |> List.filter (fun c -> c > 0)
      |> List.map float_of_int |> Array.of_list
    in
    if Array.length nonleaf = 0 then (0.0, 0.0)
    else (Zmsq_util.Stats.mean nonleaf, Zmsq_util.Stats.stddev nonleaf)
  in
  let elt k = Zmsq_pq.Elt.of_priority k in
  for _ = 1 to init do
    Q.insert h (elt (Keys.next g))
  done;
  let mean0, sd0 = stats () in
  for _ = 1 to pairs do
    Q.insert h (elt (Keys.next g));
    ignore (Q.extract h)
  done;
  let mean1, sd1 = stats () in
  let c = Q.Debug.counters q in
  Q.unregister h;
  [
    Table.make ~id:"stable" ~title:"TNode set-size stability under mixed load"
      ~notes:
        [
          Printf.sprintf "%d preloaded, %d insert/extract pairs, batch=32 target_len=32" init pairs;
          "paper: counts settle at target_len (mean 32, sd 2.76) after the run";
        ]
      ~header:[ "phase"; "mean count"; "stddev"; "splits"; "forced"; "min-swaps" ]
      [
        [ "after preload"; Table.cell_f mean0; Table.cell_f sd0; "-"; "-"; "-" ];
        [
          "after pairs";
          Table.cell_f mean1;
          Table.cell_f sd1;
          Table.cell_i c.Zmsq.splits;
          Table.cell_i c.Zmsq.forced_inserts;
          Table.cell_i c.Zmsq.min_swaps;
        ];
      ];
  ]

(* {2 7-bit keys (Section 4.5.1's side experiment)} *)

let keys7 () =
  let ops = scaled 1_000_000 in
  let queues = fig5_queues () in
  let rows =
    List.map
      (fun t ->
        let spec =
          {
            Throughput.default_spec with
            Throughput.total_ops = ops;
            insert_permil = 500;
            preload = ops / 2;
            keys = Keys.Uniform { bits = 7 };
            threads = t;
          }
        in
        row_f (string_of_int t)
          (List.map (fun (_, f) -> Throughput.run_avg ~repeats:(repeats ()) f spec) queues))
      (threads ())
  in
  [
    Table.make ~id:"keys7" ~title:"throughput with 7-bit keys (shallow trees)"
      ~notes:
        [
          Printf.sprintf "%d ops, 50/50 mix; only 128 distinct priorities" ops;
          "paper: all relaxed queues too shallow to scale; degradation worst for mound";
          "values: Mops/s";
        ]
      ~header:("threads" :: List.map fst queues)
      rows;
  ]

(* {2 Ablations} *)

let ablation_variants =
  [
    ("full", Fun.id);
    ("no-forced", fun p -> { p with P.forced_insert = false });
    ("no-minswap", fun p -> { p with P.min_swap = false });
    ("no-split", fun p -> { p with P.split = false });
    ("blocking-locks", fun p -> { p with P.lock_policy = P.Blocking });
    ("pool-insert", fun p -> { p with P.pool_insert = true });
  ]

(* Set-representation ablation rows run against the same spec. *)
let set_variants =
  [
    ("set=list", fun params -> Instances.zmsq ~params ());
    ("set=lazy-list", fun params -> Instances.zmsq_lazy ~params ());
    ("set=array", fun params -> Instances.zmsq_array ~params ());
  ]

(* Section 5 extension study: the same mixed workload with and without a
   dedicated helper domain improving set quality in the background. *)
let helper_study () =
  let module Q = Zmsq.Default in
  let ops = scaled 1_000_000 in
  let t = List.fold_left max 1 (threads ()) in
  let measure ~with_helper =
    let q = Q.create ~params:(P.static 32) () in
    let rng = Zmsq_util.Rng.create ~seed:0x4E1 () in
    let streams =
      Zmsq_dist.Workload.per_thread rng ~threads:t ~keys:normal_keys ~insert_permil:500 ops
    in
    (* preload *)
    let h = Q.register q in
    let g = Keys.make (Zmsq_util.Rng.split rng) normal_keys in
    for _ = 1 to ops / 2 do
      Q.insert h (Zmsq_pq.Elt.of_priority (Keys.next g))
    done;
    let stop = Atomic.make false in
    let helper =
      if with_helper then
        Some
          (Domain.spawn (fun () ->
               let hh = Q.register q in
               while not (Atomic.get stop) do
                 ignore (Q.helper_pass hh)
               done;
               Q.unregister hh))
      else None
    in
    let _, seconds =
      Runner.timed_parallel_pre ~threads:t
        ~setup:(fun tid -> (Q.register q, streams.(tid)))
        ~run:(fun _ (h, ops) ->
          Array.iter
            (fun op ->
              match op with
              | Zmsq_dist.Workload.Insert k -> Q.insert h (Zmsq_pq.Elt.of_priority k)
              | Zmsq_dist.Workload.Extract -> ignore (Q.extract h))
            ops;
          Q.unregister h)
    in
    Atomic.set stop true;
    Option.iter Domain.join helper;
    let counts = Q.Debug.node_counts q in
    let nonempty = Array.to_list counts |> List.filter (fun c -> c > 0) |> List.map float_of_int in
    let mean_count =
      if nonempty = [] then 0.0 else Zmsq_util.Stats.mean (Array.of_list nonempty)
    in
    let c = Q.Debug.counters q in
    Q.unregister h;
    (float_of_int ops /. seconds /. 1e6, mean_count, c.Zmsq.helper_moves)
  in
  let base_mops, base_qual, _ = measure ~with_helper:false in
  let help_mops, help_qual, moves = measure ~with_helper:true in
  [
    Table.make ~id:"helper" ~title:"helper-thread extension (Section 5 future work)"
      ~notes:
        [
          Printf.sprintf "50/50 mix, %d ops, %d worker threads, batch=32 target_len=32" ops t;
          "helper domain runs quality passes concurrently with the workload";
        ]
      ~header:[ "variant"; "Mops/s"; "mean set size"; "helper moves" ]
      [
        [ "no helper"; Table.cell_f base_mops; Table.cell_f base_qual; "-" ];
        [ "with helper"; Table.cell_f help_mops; Table.cell_f help_qual; Table.cell_i moves ];
      ];
  ]

let ablations () =
  let base = P.static 32 in
  let ops = scaled 500_000 in
  let t = List.fold_left max 1 (threads ()) in
  let spec =
    {
      Throughput.default_spec with
      Throughput.total_ops = ops;
      insert_permil = 500;
      preload = ops / 2;
      keys = normal_keys;
      threads = t;
    }
  in
  let row name factory =
    let mops = Throughput.run_avg ~repeats:(repeats ()) factory spec in
    let acc =
      Accuracy.run_avg ~repeats:1 factory
        { Accuracy.qsize = 16384; extracts = 1638; threads = 1; seed = 0xAB }
    in
    [ name; Table.cell_f mops; Table.cell_f acc ]
  in
  let rows =
    List.map (fun (name, f) -> row name (Instances.zmsq ~params:(f base) ())) ablation_variants
    @ List.map (fun (name, mk) -> row name (mk base)) set_variants
  in
  [
    Table.make ~id:"ablations" ~title:"ZMSQ design-choice ablations"
      ~notes:
        [
          Printf.sprintf "50/50 mix, %d ops, %d threads, batch=32 target_len=32" ops t;
          "accuracy: top-10%% hit rate on a 16K queue, single thread";
        ]
      ~header:[ "variant"; "Mops/s"; "accuracy %" ]
      rows;
  ]

(* {2 Input-pattern sensitivity (Section 3.7)}

   The paper: the mound is highly sensitive to input pattern (descending
   inserts give size-1 lists, degrading it to a heap); the SprayList is
   insensitive; ZMSQ sits in between thanks to non-head insertion. We feed
   each structure the same op stream under different key patterns and
   report throughput plus the mean set/list size that explains it. *)

let patterns () =
  let ops = scaled 1_000_000 in
  let t = 2 in
  let key_specs =
    [
      ("uniform", uniform_keys);
      ("normal", normal_keys);
      ("ascending", Keys.Ascending { start = 1 });
      ("descending", Keys.Descending { start = ops + 1 });
      ("zipf", Keys.Zipf { n = 1 lsl 16; theta = 0.8 });
    ]
  in
  let spec keys =
    {
      Throughput.default_spec with
      Throughput.total_ops = ops;
      insert_permil = 500;
      preload = ops / 2;
      keys;
      threads = t;
    }
  in
  (* mean set size needs a live queue, so measure it inline *)
  let zmsq_quality keys =
    let module Q = Zmsq.Default in
    let q = Q.create ~params:(P.static 32) () in
    let h = Q.register q in
    let g = Keys.make (Zmsq_util.Rng.create ~seed:0xA11 ()) keys in
    for _ = 1 to ops / 2 do
      Q.insert h (Zmsq_pq.Elt.of_priority (Keys.next g))
    done;
    for _ = 1 to ops / 2 do
      Q.insert h (Zmsq_pq.Elt.of_priority (Keys.next g));
      ignore (Q.extract h)
    done;
    let counts = Q.Debug.node_counts q |> Array.to_list |> List.filter (fun c -> c > 0) in
    Q.unregister h;
    if counts = [] then 0.0
    else float_of_int (List.fold_left ( + ) 0 counts) /. float_of_int (List.length counts)
  in
  let mound_quality keys =
    let module M = Zmsq_mound.Mound in
    let q = M.create () in
    let h = M.register q in
    let g = Keys.make (Zmsq_util.Rng.create ~seed:0xA12 ()) keys in
    for _ = 1 to ops / 2 do
      M.insert h (Zmsq_pq.Elt.of_priority (Keys.next g))
    done;
    for _ = 1 to ops / 2 do
      M.insert h (Zmsq_pq.Elt.of_priority (Keys.next g));
      ignore (M.extract h)
    done;
    let counts = M.list_lengths q |> Array.to_list |> List.filter (fun c -> c > 0) in
    M.unregister h;
    if counts = [] then 0.0
    else float_of_int (List.fold_left ( + ) 0 counts) /. float_of_int (List.length counts)
  in
  let rows =
    List.map
      (fun (name, keys) ->
        let z = Throughput.run_avg ~repeats:1 (Instances.zmsq ~params:(P.static 32) ()) (spec keys) in
        let m = Throughput.run_avg ~repeats:1 Instances.mound (spec keys) in
        let s = Throughput.run_avg ~repeats:1 Instances.spraylist (spec keys) in
        [
          name;
          Table.cell_f z;
          Table.cell_f m;
          Table.cell_f s;
          Table.cell_f (zmsq_quality keys);
          Table.cell_f (mound_quality keys);
        ])
      key_specs
  in
  [
    Table.make ~id:"patterns" ~title:"input-pattern sensitivity"
      ~notes:
        [
          Printf.sprintf "%d ops, 50/50 mix, 2 threads, zmsq batch=32 target_len=32" ops;
          "paper (Section 3.7): mound degrades on monotone input; spraylist unaffected;";
          "zmsq in between — larger mean set sizes are the mechanism";
        ]
      ~header:
        [ "pattern"; "zmsq Mops"; "mound Mops"; "spray Mops"; "zmsq set size"; "mound list size" ]
      rows;
  ]

(* {2 Memory footprint and tree compactness (Section 3.2 claims)}

   The paper: ZMSQ's denser sets give (1) a tree 4-5 levels shallower than
   the mound's and (2) substantially less memory. We preload identical
   elements and compare live heap words (via a compacting Gc measurement
   around each structure) and tree depth. *)

let mem () =
  let n = scaled 1_000_000 in
  let preload_keys =
    Keys.stream (Zmsq_util.Rng.create ~seed:0x3E3 ()) uniform_keys n
  in
  let live_words () =
    Gc.compact ();
    (Gc.stat ()).Gc.live_words
  in
  let measure name insert depth =
    let base = live_words () in
    insert ();
    let used = live_words () - base in
    (name, used, depth ())
  in
  let rows = ref [] in
  (* ZMSQ (list) *)
  let zq = ref None in
  let name, words, depth =
    measure "zmsq(list)"
      (fun () ->
        let module Q = Zmsq.Default in
        let q = Q.create ~params:P.(default |> with_batch 48 |> with_target_len 72) () in
        let h = Q.register q in
        Array.iter (fun k -> Q.insert h (Zmsq_pq.Elt.of_priority k)) preload_keys;
        Q.unregister h;
        zq := Some (Obj.repr q))
      (fun () ->
        match !zq with
        | Some o -> Zmsq.Default.Debug.leaf_level (Obj.obj o)
        | None -> -1)
  in
  rows := [ name; Table.cell_i words; Table.cell_i depth; Table.cell_f (float_of_int words /. float_of_int n) ] :: !rows;
  zq := None;
  (* mound *)
  let mq = ref None in
  let name, words, depth =
    measure "mound"
      (fun () ->
        let module M = Zmsq_mound.Mound in
        let q = M.create () in
        let h = M.register q in
        Array.iter (fun k -> M.insert h (Zmsq_pq.Elt.of_priority k)) preload_keys;
        M.unregister h;
        mq := Some (Obj.repr q))
      (fun () ->
        match !mq with
        | Some o -> Zmsq_mound.Mound.leaf_level (Obj.obj o)
        | None -> -1)
  in
  rows := [ name; Table.cell_i words; Table.cell_i depth; Table.cell_f (float_of_int words /. float_of_int n) ] :: !rows;
  mq := None;
  (* spraylist *)
  let sq = ref None in
  let name, words, depth =
    measure "spraylist"
      (fun () ->
        let module S = Zmsq_spraylist.Spraylist in
        let q = S.create () in
        let h = S.register q in
        Array.iter (fun k -> S.insert h (Zmsq_pq.Elt.of_priority k)) preload_keys;
        S.unregister h;
        sq := Some (Obj.repr q))
      (fun () -> 24 (* fixed tower height bound *))
  in
  rows := [ name; Table.cell_i words; Table.cell_i depth; Table.cell_f (float_of_int words /. float_of_int n) ] :: !rows;
  sq := None;
  [
    Table.make ~id:"mem" ~title:"memory footprint and tree depth"
      ~notes:
        [
          Printf.sprintf "%d preloaded 20-bit keys; live heap words attributable to the structure" n;
          "paper (Section 3.2): ZMSQ's denser sets cut depth by 4-5 levels vs the mound";
        ]
      ~header:[ "structure"; "live words"; "depth/levels"; "words per element" ]
      (List.rev !rows);
  ]

(* {2 Insert buffering extension (after Williams & Sanders' MultiQueue)}

   Per-handle local insert buffers published as bulk leaf insertions.
   Insert-heavy workloads are where the amortization pays: each flush
   takes the tree locks once for up to buffer_len elements. The mixed
   table shows the cost side — extract-side demand flushes and the wider
   relaxation window. *)

let buffer_lens = [ 0; 16; 64 ]

let buffer () =
  let ops = scaled 1_000_000 in
  let factory buffer_len =
    Instances.zmsq
      ~params:P.(default |> with_batch 48 |> with_target_len 72 |> with_buffer_len buffer_len)
      ()
  in
  let table ~id ~title ~insert_permil ~preload =
    let rows =
      List.map
        (fun t ->
          let spec =
            {
              Throughput.default_spec with
              Throughput.total_ops = ops;
              insert_permil;
              preload;
              keys = uniform_keys;
              threads = t;
            }
          in
          row_f (string_of_int t)
            (List.map
               (fun bl -> Throughput.run_avg ~repeats:(repeats ()) (factory bl) spec)
               buffer_lens))
        (threads ())
    in
    Table.make ~id ~title
      ~notes:
        [
          Printf.sprintf "%d ops, batch=48 target_len=72, uniform keys%s" ops
            (if preload > 0 then Printf.sprintf ", %d preloaded" preload else ", empty start");
          "buf=0 is the unbuffered baseline; values: Mops/s (higher is better)";
        ]
      ~header:("threads" :: List.map (fun b -> Printf.sprintf "buf=%d" b) buffer_lens)
      rows
  in
  (* The quality side of the trade: preloading through buffers lands each
     group at a position keyed on its max, so its smaller elements ride
     high in the tree and Table-1-style hit rates drop — the window bound
     is untouched (test_props), but rank accuracy is not free. *)
  let accuracy_table =
    let qsize = 16384 and extracts = 1638 in
    let rows =
      List.map
        (fun t ->
          row_f (string_of_int t)
            (List.map
               (fun bl ->
                 Accuracy.run_avg ~repeats:(repeats ()) (factory bl)
                   { Accuracy.qsize; extracts; threads = t; seed = 0xBACC })
               buffer_lens))
        [ 1; 2 ]
    in
    Table.make ~id:"buffer-accuracy" ~title:"top-10% hit rate vs buffer_len"
      ~notes:
        [
          Printf.sprintf "%d keys preloaded through a buffered handle, %d extractions" qsize
            extracts;
          "bulk landings cost rank accuracy (smaller elements travel with their max);";
          "the batch + ndomains*buffer_len window bound is unaffected (see test_props)";
        ]
      ~header:("threads" :: List.map (fun b -> Printf.sprintf "buf=%d" b) buffer_lens)
      rows
  in
  [
    table ~id:"buffer-insert" ~title:"insert-only throughput vs buffer_len" ~insert_permil:1000
      ~preload:0;
    table ~id:"buffer-mixed" ~title:"50/50 mix throughput vs buffer_len" ~insert_permil:500
      ~preload:(ops / 2);
    accuracy_table;
  ]

(* {2 Sharded ZMSQ-of-ZMSQs (ROADMAP item 1 / Engineering MultiQueues)}

   Throughput and accuracy across the shards axis. Insert-heavy workloads
   are where sharding pays: sticky routing sends each handle's flushes at
   its own shard, so the per-shard root and leaf locks see 1/shards of the
   traffic. The accuracy table shows the cost side — the rank-error window
   widens to shards * (batch + ndomains*buffer_len) plus the two-choice
   selection slack (Accuracy.sharded_bound). *)

let shard_counts = [ 1; 2; 4 ]

let shard () =
  let ops = scaled 1_000_000 in
  let factory shards =
    Instances.zmsq_shard
      ~params:
        P.(
          default |> with_batch 48 |> with_target_len 72 |> with_buffer_len 64
          |> with_shards shards)
      ()
  in
  let table ~id ~title ~insert_permil ~preload =
    let rows =
      List.map
        (fun t ->
          let spec =
            {
              Throughput.default_spec with
              Throughput.total_ops = ops;
              insert_permil;
              preload;
              keys = uniform_keys;
              threads = t;
            }
          in
          row_f (string_of_int t)
            (List.map
               (fun s -> Throughput.run_avg ~repeats:(repeats ()) (factory s) spec)
               shard_counts))
        (threads ())
    in
    Table.make ~id ~title
      ~notes:
        [
          Printf.sprintf "%d ops, batch=48 target_len=72 buf=64, uniform keys%s" ops
            (if preload > 0 then Printf.sprintf ", %d preloaded" preload else ", empty start");
          "shards=1 delegates to the plain queue; values: Mops/s (higher is better)";
        ]
      ~header:("threads" :: List.map (fun s -> Printf.sprintf "shards=%d" s) shard_counts)
      rows
  in
  let accuracy_table =
    let qsize = 16384 and extracts = 1638 in
    let rows =
      List.map
        (fun t ->
          row_f (string_of_int t)
            (List.map
               (fun s ->
                 Accuracy.run_avg ~repeats:(repeats ()) (factory s)
                   { Accuracy.qsize; extracts; threads = t; seed = 0x5ACC })
               shard_counts))
        [ 2; 4 ]
    in
    Table.make ~id:"shard-accuracy" ~title:"top-10% hit rate vs shards"
      ~notes:
        [
          Printf.sprintf "%d keys preloaded, %d extractions" qsize extracts;
          "the rank-error window is shards * (batch + ndomains*buffer_len) plus the";
          "two-choice selection slack (Accuracy.sharded_bound, enforced in test_props)";
        ]
      ~header:("threads" :: List.map (fun s -> Printf.sprintf "shards=%d" s) shard_counts)
      rows
  in
  [
    table ~id:"shard-insert" ~title:"insert-only throughput vs shards" ~insert_permil:1000
      ~preload:0;
    table ~id:"shard-mixed" ~title:"50/50 mix throughput vs shards" ~insert_permil:500
      ~preload:(ops / 2);
    accuracy_table;
  ]

(* {2 Registry} *)

let all =
  [
    { id = "fig2a"; title = "lock study, 100% inserts"; paper = "Figure 2(a)";
      run = fig2 ~insert_permil:1000 ~preload:false ~id:"fig2a" ~title:"lock study, 100% inserts" };
    { id = "fig2b"; title = "lock study, 50/50 mix"; paper = "Figure 2(b)";
      run = fig2 ~insert_permil:500 ~preload:true ~id:"fig2b" ~title:"lock study, 50/50 mix" };
    { id = "fig3a"; title = "batch/target_len, 100% inserts"; paper = "Figure 3(a)";
      run = fig3 ~insert_permil:1000 ~preload:false ~id:"fig3a" ~title:"batch/target_len, 100% inserts" };
    { id = "fig3b"; title = "batch/target_len, 50/50 mix"; paper = "Figure 3(b)";
      run = fig3 ~insert_permil:500 ~preload:true ~id:"fig3b" ~title:"batch/target_len, 50/50 mix" };
    { id = "table1a"; title = "accuracy, 1K queue"; paper = "Table 1(a)";
      run = table1 ~qsize:1024 ~extract_counts:[ 102; 512 ] ~id:"table1a" ~title:"accuracy, 1K queue" };
    { id = "table1b"; title = "accuracy, 64K queue"; paper = "Table 1(b)";
      run =
        table1 ~qsize:65536 ~extract_counts:[ 65; 655; 6553 ] ~id:"table1b"
          ~title:"accuracy, 64K queue" };
    { id = "fig4"; title = "blocking vs spinning"; paper = "Figure 4(a,b)"; run = fig4 };
    { id = "fig5a"; title = "throughput, 100% inserts"; paper = "Figure 5(a)";
      run =
        fig5 ~insert_permil:1000 ~preload:false ~keys:uniform_keys ~id:"fig5a"
          ~title:"throughput, 100% inserts" };
    { id = "fig5b"; title = "throughput, 66% inserts"; paper = "Figure 5(b)";
      run =
        fig5 ~insert_permil:660 ~preload:false ~keys:uniform_keys ~id:"fig5b"
          ~title:"throughput, 66% inserts" };
    { id = "fig5c"; title = "throughput, 50/50 mix, 20-bit keys"; paper = "Figure 5(c)";
      run =
        fig5 ~insert_permil:500 ~preload:true ~keys:uniform_keys ~id:"fig5c"
          ~title:"throughput, 50/50 mix, 20-bit keys" };
    { id = "fig6"; title = "producer/consumer ratios"; paper = "Figure 6"; run = fig6 };
    { id = "fig7"; title = "SSSP on social graphs"; paper = "Figure 7"; run = fig7 };
    { id = "fig8"; title = "SSSP tuning on LiveJournal"; paper = "Figure 8"; run = fig8 };
    { id = "stable"; title = "set-size stability"; paper = "Section 3.2"; run = stable };
    { id = "keys7"; title = "7-bit key study"; paper = "Section 4.5.1"; run = keys7 };
    { id = "mem"; title = "memory footprint and depth"; paper = "Section 3.2"; run = mem };
    { id = "patterns"; title = "input-pattern sensitivity"; paper = "Section 3.7"; run = patterns };
    { id = "ablations"; title = "design-choice ablations"; paper = "Sections 3.2/4.1"; run = ablations };
    { id = "helper"; title = "helper-thread extension"; paper = "Section 5"; run = helper_study };
    { id = "buffer"; title = "insert-buffering extension"; paper = "Section 5 / MultiQueue"; run = buffer };
    { id = "shard"; title = "sharded ZMSQ-of-ZMSQs"; paper = "MultiQueue / ROADMAP 1"; run = shard };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_one ?(csv_dir = "results") e =
  Printf.printf "\n###### %s — %s (%s) ######\n%!" e.id e.title e.paper;
  let t0 = Unix.gettimeofday () in
  let tables = e.run () in
  let wall = Unix.gettimeofday () -. t0 in
  List.iter
    (fun tbl ->
      Table.print tbl;
      let path = Table.save_csv ~dir:csv_dir tbl in
      Printf.printf "   [csv: %s]\n%!" path)
    tables;
  (* Machine-readable export for the perf trajectory: the experiment's
     tables, its cost, and the merged metrics of every queue the run
     created (sharded counters + any [ZMSQ_OBS=full] histograms). *)
  let snap = Zmsq_obs.Metrics.global_snapshot () in
  let json =
    Zmsq_obs.Json.Obj
      [
        ("id", Zmsq_obs.Json.Str e.id);
        ("title", Zmsq_obs.Json.Str e.title);
        ("paper", Zmsq_obs.Json.Str e.paper);
        ("scale", Zmsq_obs.Json.Float (scale ()));
        ("wall_seconds", Zmsq_obs.Json.Float wall);
        ("tables", Zmsq_obs.Json.Arr (List.map Table.to_json tables));
        ("metrics", Zmsq_obs.Export.json_of_snapshot snap);
      ]
  in
  let path =
    Zmsq_obs.Export.write_file
      ~path:(Filename.concat csv_dir (e.id ^ ".json"))
      (Zmsq_obs.Json.to_string json)
  in
  Printf.printf "   [json: %s] [%s took %.1fs]\n%!" path e.id wall
