(* The production primitives: real atomics, real mutexes, and the
   userspace futex (mutex + condition variable standing in for the Linux
   syscall). This module satisfies [Intf.PRIM] by construction; the
   signature constraint lives at the use sites so native callers keep the
   concrete [Stdlib] types. *)

module Atomic = Stdlib.Atomic
module Mutex = Stdlib.Mutex

(* Zero-cost tracked cell: the record is exactly [ref], the labels are
   dropped at [make] time, and [get]/[set] compile to one load/store. The
   checker's shim gives the same API an epoch-checked implementation. *)
module Plain = struct
  type 'a t = { mutable v : 'a }

  let make ?benign:_ ?name:_ v = { v }
  let get t = t.v
  let set t v = t.v <- v
end

module Futex = struct
  (* lint: unpadded word/mu/cond are one wait-channel; sleepers serialize on mu anyway *)
  type t = { word : int Atomic.t; mu : Mutex.t; cond : Condition.t }

  let create v = { word = Atomic.make v; mu = Mutex.create (); cond = Condition.create () }

  let get t = Atomic.get t.word

  let compare_and_set t expected desired = Atomic.compare_and_set t.word expected desired

  (* The mutex only guards the sleep/wake rendezvous. Writers update the
     word with plain atomics (as userspace futex code does) and then take
     the mutex in [wake]; because [wait] re-checks the word after taking
     the mutex, a wake that follows a word change can never be lost. *)
  let wait t expected =
    if Atomic.get t.word = expected then begin
      Mutex.lock t.mu;
      (* lint: ok — Condition.wait can be interrupted; the lock must be
         released on every raise path. *)
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.mu)
        (fun () ->
          while Atomic.get t.word = expected do
            Condition.wait t.cond t.mu
          done)
    end

  let wait_for t expected ~timeout_ns =
    if timeout_ns <= 0 then Atomic.get t.word <> expected
    else begin
      let deadline = Zmsq_util.Timing.now_ns () + timeout_ns in
      (* brief spin first: most handoffs are fast *)
      let spins = ref 256 in
      while !spins > 0 && Atomic.get t.word = expected do
        Domain.cpu_relax ();
        decr spins
      done;
      let sleep = ref 2e-6 in
      let rec poll () =
        if Atomic.get t.word <> expected then true
        else if Zmsq_util.Timing.now_ns () >= deadline then false
        else begin
          Unix.sleepf !sleep;
          sleep := Float.min 1e-3 (!sleep *. 2.0);
          poll ()
        end
      in
      poll ()
    end

  let wake t =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) (fun () -> Condition.broadcast t.cond)
end

let cpu_relax = Domain.cpu_relax

(* Long enough that the kernel actually reschedules; short enough that a
   producer parked for a full timeslice wakes us with little added lag. *)
let stall_backoff () = Unix.sleepf 50e-6

let name = "native"
