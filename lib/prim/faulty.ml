(* Fault-injecting PRIM adapter: wraps any {!Intf.PRIM} and, driven by a
   seeded per-domain policy, perturbs exactly the operations whose timing
   the wrapped primitives already leave unspecified. Everything injected is
   a *legal* execution of the unmodified primitives — a forced [try_lock]
   failure is indistinguishable from losing the race, a delayed futex wake
   is a waker preempted just before the syscall — so any algorithm failure
   the adapter provokes is a real bug, not an artifact.

   Knobs (all "1 in N" rates; 0 disables):
   - [trylock_fail_1in]    — force [Mutex.try_lock] to report failure (spin
                             locks route through {!Zmsq_sync.Lock.Faulty}
                             and consult {!Ctl.inject_try_acquire_failure}).
   - [wake_delay_1in]      — hold a [Futex.wake] and repost it after
                             [wake_delay_ops] later primitive operations
                             (delayed, never dropped: {!Ctl.quiesce} drains
                             the backlog).
   - [spurious_timeout_1in]— make [Futex.wait_for] report a timeout without
                             waiting (allowed: the caller must re-check).
   - [stall_faa_1in]       — stall right after a [fetch_and_add], widening
                             e.g. the lagging-consumer window between the
                             pool-index claim and the slot exchange in
                             [Zmsq.extract_from_pool].
   - [stall_exchange_1in]  — stall right before an [exchange] (the other
                             half of the same window, and lock handoffs).
   - Freeze gates ({!Ctl.freeze}/{!Ctl.thaw}) park a whole domain at its
     next primitive operation — e.g. a producer with a nonempty insert
     buffer — until thawed. Native-only (under the single-domain model
     shim every fiber shares one [Domain.self]).

   The functor is generative: each application gets fresh policy state and
   fresh per-domain RNGs, so a checker scenario that instantiates it inside
   [make] is deterministic per execution and replayable. The control state
   deliberately uses [Stdlib] primitives — it is harness machinery that
   must stay invisible to the model scheduler (a fault decision is not a
   yield point) and is exempt from the prim-functorized lint. *)

module Rng = Zmsq_util.Rng

type config = {
  seed : int;
  trylock_fail_1in : int;
  wake_delay_1in : int;
  wake_delay_ops : int;  (** primitive ops a delayed wake waits before repost *)
  spurious_timeout_1in : int;
  stall_faa_1in : int;
  stall_exchange_1in : int;
  stall_relax : int;  (** [cpu_relax] iterations per injected stall *)
  io_short_1in : int;  (** truncate a socket read/write to one byte *)
  io_stall_1in : int;  (** stall before a socket op (slow peer) *)
  io_drop_1in : int;  (** sever the connection mid-operation *)
  io_torn_1in : int;  (** corrupt the frame boundary (torn length prefix) *)
}

let off =
  {
    seed = 0;
    trylock_fail_1in = 0;
    wake_delay_1in = 0;
    wake_delay_ops = 8;
    spurious_timeout_1in = 0;
    stall_faa_1in = 0;
    stall_exchange_1in = 0;
    stall_relax = 0;
    io_short_1in = 0;
    io_stall_1in = 0;
    io_drop_1in = 0;
    io_torn_1in = 0;
  }

(* Wire-level faults are consulted by the socket layer ({!Zmsq_net}), not
   injected by the PRIM wrappers themselves: sockets are not primitive
   operations, but the same seeded per-domain policy machinery (rates,
   exemption, determinism) applies, so the soak's fault-exempt monitor
   stays exempt from wire chaos too. Ordered by destructiveness — a
   single consult returns at most one fault. *)
type io_fault =
  | Io_none
  | Io_drop  (** close the peer socket mid-operation *)
  | Io_torn  (** flip/truncate bytes of the length prefix *)
  | Io_short  (** deliver/accept only one byte this call *)
  | Io_stall  (** delay the operation (slow client / full buffer) *)

module type CTL = sig
  val install : config -> unit
  (** Set the active policy and reseed the per-domain RNGs. Call before the
      domains under test start; installing concurrently with running
      workers is not meaningful. *)

  val active : unit -> config

  val reset : unit -> unit
  (** [install off], thaw every domain and drain delayed wakes. *)

  val self_key : unit -> int
  (** This domain's freeze/exemption key (the domain id, folded). *)

  val freeze : int -> unit
  (** Park the keyed domain at its next primitive operation until
      {!thaw}. Native-only; never freeze your own key. *)

  val thaw : int -> unit

  val crash : int -> unit
  (** Permanently freeze the keyed domain — the model of a thread that
      died without unregistering its queue handle. Unlike {!freeze} the
      key is recorded ({!crashed}), so a harness can distinguish injected
      deaths from transient freezes; a crashed domain is only released by
      {!thaw} (for teardown joins) or {!reset}. A domain may crash its own
      key: it parks at its next primitive operation. *)

  val crashed : unit -> int list
  (** Keys crashed since the last {!reset}, oldest first. *)

  val exempt_self : unit -> unit
  (** Opt this domain (e.g. a watchdog/monitor) out of fault firing and
      freeze gates, so observation timing stays honest. *)

  val quiesce : unit -> unit
  (** Deliver every delayed wake now. Watchdogs call this periodically so
      "delayed" can never silently become "dropped". *)

  val inject_try_acquire_failure : unit -> bool
  (** Policy consult for {!Zmsq_sync.Lock.Faulty} wrappers: true when this
      attempt must be failed (counted like a [try_lock] injection). *)

  val inject_io : unit -> io_fault
  (** Policy consult for the socket layer: which wire fault (if any) this
      I/O operation must suffer. At most one fault per consult, most
      destructive first (drop > torn > short > stall); exempt domains
      always get [Io_none]. Counted in {!stats}. *)

  val stats : unit -> (string * int) list
  (** Injection counters: trylock_failures, wakes_delayed, wakes_reposted,
      spurious_timeouts, stalls, freeze_waits, io_shorts, io_stalls,
      io_drops, io_torn. *)
end

module Make (P : Intf.PRIM) () : sig
  include Intf.PRIM

  module Ctl : CTL
end = struct
  let cfg = Stdlib.Atomic.make off
  let n_keys = 256
  let key () = (Domain.self () :> int) land (n_keys - 1)
  let frozen = Array.init n_keys (fun _ -> Stdlib.Atomic.make false)
  let exempt = Array.init n_keys (fun _ -> Stdlib.Atomic.make false)
  let crashed_flags = Array.init n_keys (fun _ -> Stdlib.Atomic.make false)

  (* Per-domain RNG streams: fault decisions in one domain never perturb
     another domain's sequence, so a fixed seed is reproducible per domain
     regardless of interleaving. (Key collisions after 256 domains would
     share a stream; harnesses never get near that.) *)
  let rngs : Rng.t option array = Array.make n_keys None

  let rng_for k =
    match rngs.(k) with
    | Some r -> r
    | None ->
        let r =
          Rng.create ~seed:((Stdlib.Atomic.get cfg).seed lxor (0x9E3779B9 * (k + 1))) ()
        in
        rngs.(k) <- Some r;
        r

  let c_trylock = Stdlib.Atomic.make 0
  let c_wake_delayed = Stdlib.Atomic.make 0
  let c_wake_reposted = Stdlib.Atomic.make 0
  let c_spurious = Stdlib.Atomic.make 0
  let c_stalls = Stdlib.Atomic.make 0
  let c_freeze_waits = Stdlib.Atomic.make 0
  let c_crashes = Stdlib.Atomic.make 0
  let c_io_short = Stdlib.Atomic.make 0
  let c_io_stall = Stdlib.Atomic.make 0
  let c_io_drop = Stdlib.Atomic.make 0
  let c_io_torn = Stdlib.Atomic.make 0

  let fire rate =
    rate > 0
    &&
    let k = key () in
    (not (Stdlib.Atomic.get exempt.(k))) && Rng.int (rng_for k) rate = 0

  (* Delayed wakes: (futex, remaining-op countdown). Reposts happen at the
     adapter level — before delegating the next op — never from inside a
     wrapped operation's own execution (under the model shim that would
     nest effects inside the scheduler's handler). *)
  let pending_mu = Stdlib.Mutex.create ()
  let pending : (P.Futex.t * int ref) list ref = ref []
  let pending_n = Stdlib.Atomic.make 0

  let drain ~all =
    let due = ref [] in
    Stdlib.Mutex.lock pending_mu;
    Fun.protect
      ~finally:(fun () -> Stdlib.Mutex.unlock pending_mu)
      (fun () ->
        pending :=
          List.filter
            (fun (fx, left) ->
              decr left;
              if all || !left <= 0 then begin
                due := fx :: !due;
                false
              end
              else true)
            !pending;
        Stdlib.Atomic.set pending_n (List.length !pending));
    List.iter
      (fun fx ->
        Stdlib.Atomic.incr c_wake_reposted;
        P.Futex.wake fx)
      !due

  let defer_wake fx =
    let ops = max 1 (Stdlib.Atomic.get cfg).wake_delay_ops in
    Stdlib.Atomic.incr c_wake_delayed;
    Stdlib.Mutex.lock pending_mu;
    Fun.protect
      ~finally:(fun () -> Stdlib.Mutex.unlock pending_mu)
      (fun () ->
        pending := (fx, ref ops) :: !pending;
        Stdlib.Atomic.set pending_n (List.length !pending))

  let gate () =
    let k = key () in
    if Stdlib.Atomic.get frozen.(k) && not (Stdlib.Atomic.get exempt.(k)) then begin
      Stdlib.Atomic.incr c_freeze_waits;
      while Stdlib.Atomic.get frozen.(k) do
        P.cpu_relax ()
      done
    end

  (* Every wrapped op passes through here: honor a freeze, deliver due
     delayed wakes. *)
  let tick () =
    gate ();
    if Stdlib.Atomic.get pending_n > 0 then drain ~all:false

  let stall () =
    Stdlib.Atomic.incr c_stalls;
    for _ = 1 to (Stdlib.Atomic.get cfg).stall_relax do
      P.cpu_relax ()
    done

  module Ctl = struct
    let active () = Stdlib.Atomic.get cfg

    let install c =
      Stdlib.Atomic.set cfg c;
      Array.fill rngs 0 n_keys None

    let self_key () = key ()
    let freeze k = Stdlib.Atomic.set frozen.(k land (n_keys - 1)) true
    let thaw k = Stdlib.Atomic.set frozen.(k land (n_keys - 1)) false

    let crash k =
      let k = k land (n_keys - 1) in
      if not (Stdlib.Atomic.get crashed_flags.(k)) then begin
        Stdlib.Atomic.set crashed_flags.(k) true;
        Stdlib.Atomic.incr c_crashes
      end;
      Stdlib.Atomic.set frozen.(k) true

    let crashed () =
      List.filter
        (fun k -> Stdlib.Atomic.get crashed_flags.(k))
        (List.init n_keys Fun.id)

    let exempt_self () = Stdlib.Atomic.set exempt.(key ()) true
    let quiesce () = drain ~all:true

    let reset () =
      install off;
      Array.iter (fun a -> Stdlib.Atomic.set a false) frozen;
      Array.iter (fun a -> Stdlib.Atomic.set a false) crashed_flags;
      quiesce ()

    let inject_try_acquire_failure () =
      let hit = fire (Stdlib.Atomic.get cfg).trylock_fail_1in in
      if hit then Stdlib.Atomic.incr c_trylock;
      hit

    let inject_io () =
      let c = Stdlib.Atomic.get cfg in
      if fire c.io_drop_1in then begin
        Stdlib.Atomic.incr c_io_drop;
        Io_drop
      end
      else if fire c.io_torn_1in then begin
        Stdlib.Atomic.incr c_io_torn;
        Io_torn
      end
      else if fire c.io_short_1in then begin
        Stdlib.Atomic.incr c_io_short;
        Io_short
      end
      else if fire c.io_stall_1in then begin
        Stdlib.Atomic.incr c_io_stall;
        Io_stall
      end
      else Io_none

    let stats () =
      [
        ("trylock_failures", Stdlib.Atomic.get c_trylock);
        ("wakes_delayed", Stdlib.Atomic.get c_wake_delayed);
        ("wakes_reposted", Stdlib.Atomic.get c_wake_reposted);
        ("spurious_timeouts", Stdlib.Atomic.get c_spurious);
        ("stalls", Stdlib.Atomic.get c_stalls);
        ("freeze_waits", Stdlib.Atomic.get c_freeze_waits);
        ("crashes", Stdlib.Atomic.get c_crashes);
        ("io_shorts", Stdlib.Atomic.get c_io_short);
        ("io_stalls", Stdlib.Atomic.get c_io_stall);
        ("io_drops", Stdlib.Atomic.get c_io_drop);
        ("io_torn", Stdlib.Atomic.get c_io_torn);
      ]
  end

  module Atomic = struct
    type 'a t = 'a P.Atomic.t

    let make = P.Atomic.make

    let get t =
      tick ();
      P.Atomic.get t

    let set t v =
      tick ();
      P.Atomic.set t v

    let exchange t v =
      tick ();
      if fire (Stdlib.Atomic.get cfg).stall_exchange_1in then stall ();
      P.Atomic.exchange t v

    let compare_and_set t a b =
      tick ();
      P.Atomic.compare_and_set t a b

    let fetch_and_add t d =
      tick ();
      let v = P.Atomic.fetch_and_add t d in
      (* Stall with the FAA result already claimed: for the batch pool this
         is exactly the lagging-consumer window between taking a pool index
         and consuming the slot. *)
      if fire (Stdlib.Atomic.get cfg).stall_faa_1in then stall ();
      v

    let incr t =
      tick ();
      P.Atomic.incr t

    let decr t =
      tick ();
      P.Atomic.decr t
  end

  module Mutex = struct
    type t = P.Mutex.t

    let create = P.Mutex.create

    let lock t =
      tick ();
      P.Mutex.lock t

    let try_lock t =
      tick ();
      if Ctl.inject_try_acquire_failure () then false else P.Mutex.try_lock t

    let unlock t =
      tick ();
      P.Mutex.unlock t
  end

  (* Plain cells pass straight through: a non-atomic access is not a
     primitive operation (no [tick], no yield point under the shim), and
     perturbing its timing is the scheduler's job, not the fault policy's.
     Forwarding keeps the wrapped PRIM's race tracking intact. *)
  module Plain = P.Plain

  module Futex = struct
    type t = P.Futex.t

    let create = P.Futex.create

    let get t =
      tick ();
      P.Futex.get t

    let compare_and_set t a b =
      tick ();
      P.Futex.compare_and_set t a b

    let wait t e =
      tick ();
      P.Futex.wait t e

    let wait_for t e ~timeout_ns =
      tick ();
      if fire (Stdlib.Atomic.get cfg).spurious_timeout_1in then begin
        Stdlib.Atomic.incr c_spurious;
        false
      end
      else P.Futex.wait_for t e ~timeout_ns

    let wake t =
      tick ();
      if fire (Stdlib.Atomic.get cfg).wake_delay_1in then defer_wake t
      else P.Futex.wake t
  end

  let cpu_relax () =
    tick ();
    P.cpu_relax ()

  let stall_backoff () =
    tick ();
    P.stall_backoff ()

  let name = "faulty(" ^ P.name ^ ")"
end
