(** The synchronization-primitive signature every concurrent module in this
    repository is functorized over.

    Two implementations exist:

    - {!Native} (this library) — the real [Stdlib.Atomic] / [Stdlib.Mutex]
      plus the userspace futex. Production code paths go through it; the
      functor applications are fixed at module-definition time so the only
      cost over direct calls is the (non-flambda) cross-functor call.
    - [Zmsq_check.Shim] — a *schedulable* implementation in which every
      load/store/CAS/fetch-and-add is a yield point under a controlled
      single-domain scheduler, enabling deterministic exhaustive
      interleaving exploration (see ANALYSIS.md).

    A third, {!Faulty}, is an adapter rather than an implementation: it
    wraps either of the above and injects seeded, semantics-preserving
    faults (forced trylock failures, delayed-then-reposted futex wakes,
    spurious timed-wait timeouts, stalls inside claim/consume windows,
    whole-domain freezes) for the chaos scenarios and the soak runner.

    Algorithm code must never touch [Stdlib.Atomic], [Stdlib.Mutex],
    [Domain.cpu_relax] or a raw futex directly — the [zmsq_analyze] pass
    enforces this for files marked [(* lint: prim-functorized *)]. *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a

  val compare_and_set : 'a t -> 'a -> 'a -> bool
  (** Physical-equality compare, exactly like [Stdlib.Atomic]. *)

  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

module type MUTEX = sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val try_lock : t -> bool
  val unlock : t -> unit
end

(** The futex word of the paper's Listing 3: a plain-atomics-readable word
    plus a kernel-side (or, under the checker, scheduler-side) wait queue. *)
module type FUTEX = sig
  type t

  val create : int -> t
  val get : t -> int
  val compare_and_set : t -> int -> int -> bool

  val wait : t -> int -> unit
  (** [wait t expected] blocks while the word equals [expected]; returns
      immediately otherwise. Spurious wakeups allowed. *)

  val wait_for : t -> int -> timeout_ns:int -> bool
  (** [wait] with a deadline: [true] when the word changed, [false] on
      timeout. The checker implementation never times out. *)

  val wake : t -> unit
  (** Wake every thread currently blocked in {!wait} on [t]. *)
end

(** A tracked non-atomic cell: the declared home for every mutable field
    that is shared across threads but deliberately *not* an atomic. Native
    code pays nothing (the cell is exactly a [ref]); under the checker each
    access is an epoch-checked event in the happens-before race detector
    ([Zmsq_check.Race]), so an access pair with no synchronization between
    it is reported with both stacks and a replayable schedule.

    [?benign] declares a known racy-by-design cell: the detector skips it,
    and the reason string plus a matching [(* race: benign <reason> *)]
    comment at the declaration site document why the race is acceptable
    (see ANALYSIS.md, "Race annotation vocabulary"). *)
module type PLAIN = sig
  type 'a t

  val make : ?benign:string -> ?name:string -> 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
end

module type PRIM = sig
  module Atomic : ATOMIC
  module Mutex : MUTEX
  module Futex : FUTEX
  module Plain : PLAIN

  val cpu_relax : unit -> unit
  (** Spin-loop hint. A no-op under the checker (every spin loop must
      contain an atomic read, which is already a yield point). *)

  val stall_backoff : unit -> unit
  (** A stronger [cpu_relax] for waiting on another domain's
      *descheduled* store (e.g. the ingress ring is full behind a
      producer parked mid-push): surrender the rest of the timeslice
      with a short timed sleep so the stalled writer can run, instead
      of burning the quantum it needs. A no-op under the checker — the
      model has no timeslices, and the retry loop around the call
      already yields through its atomic reads. *)

  val name : string
end
