module Elt = Zmsq_pq.Elt
module Intf = Zmsq_pq.Intf

type instance = { values : int array; weights : int array; capacity : int }

let generate rng ~n ?(max_value = 1000) ?(max_weight = 1000) ?(tightness = 0.5) () =
  if n <= 0 then invalid_arg "Knapsack.generate";
  let weights = Array.init n (fun _ -> 1 + Zmsq_util.Rng.int rng max_weight) in
  (* weakly correlated: value near weight, clamped positive *)
  let values =
    Array.map
      (fun w ->
        let noise = Zmsq_util.Rng.int rng (max_value / 5) - (max_value / 10) in
        max 1 (min max_value (w + noise)))
      weights
  in
  let total = Array.fold_left ( + ) 0 weights in
  { values; weights; capacity = max 1 (int_of_float (float_of_int total *. tightness)) }

let solve_dp { values; weights; capacity } =
  let best = Array.make (capacity + 1) 0 in
  Array.iteri
    (fun i w ->
      for c = capacity downto w do
        if best.(c - w) + values.(i) > best.(c) then best.(c) <- best.(c - w) + values.(i)
      done)
    weights;
  best.(capacity)

(* Normalize: items sorted by value density, the branching order. *)
let by_density { values; weights; capacity } =
  let n = Array.length values in
  let idx = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      compare
        (float_of_int values.(b) /. float_of_int weights.(b))
        (float_of_int values.(a) /. float_of_int weights.(a)))
    idx;
  {
    values = Array.map (fun i -> values.(i)) idx;
    weights = Array.map (fun i -> weights.(i)) idx;
    capacity;
  }

let solve_greedy inst =
  let { values; weights; capacity } = by_density inst in
  let value = ref 0 and room = ref capacity in
  Array.iteri
    (fun i w ->
      if w <= !room then begin
        room := !room - w;
        value := !value + values.(i)
      end)
    weights;
  !value

(* Fractional (LP-relaxation) upper bound for the subproblem that has
   decided items [0, level) and carries (weight, value). Items are density
   sorted, so greedy + fraction is optimal for the relaxation. *)
let upper_bound { values; weights; capacity } ~level ~weight ~value =
  let n = Array.length values in
  let room = ref (capacity - weight) in
  let bound = ref value in
  let i = ref level in
  let exact = ref true in
  while !exact && !i < n do
    if weights.(!i) <= !room then begin
      room := !room - weights.(!i);
      bound := !bound + values.(!i);
      incr i
    end
    else begin
      bound := !bound + (values.(!i) * !room / weights.(!i));
      exact := false
    end
  done;
  !bound

type stats = { explored : int; pruned : int; wall_seconds : float }

(* Append-only chunked node store: lock-free reads, mutex-guarded chunk
   allocation. Node ids index it and ride in element payloads. *)
module Store = struct
  let chunk_bits = 14
  let chunk_size = 1 lsl chunk_bits

  type t = {
    chunks : (int * int * int) array option Atomic.t array; (* lint: unpadded write-once publish slots; read-mostly after *)
    cursor : int Atomic.t; (* lint: unpadded single FAA per 16K-node chunk; cold *)
    grow_mu : Mutex.t;
  }

  let create ~max_nodes =
    let n_chunks = ((max_nodes + chunk_size - 1) / chunk_size) + 1 in
    {
      chunks = Array.init n_chunks (fun _ -> Atomic.make None);
      cursor = Atomic.make 0;
      grow_mu = Mutex.create ();
    }

  let ensure_chunk t ci =
    if ci >= Array.length t.chunks then failwith "Knapsack: node store exhausted";
    match Atomic.get t.chunks.(ci) with
    | Some c -> c
    | None ->
        Mutex.lock t.grow_mu;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.grow_mu)
          (fun () ->
            match Atomic.get t.chunks.(ci) with
            | Some c -> c
            | None ->
                let c = Array.make chunk_size (0, 0, 0) in
                Atomic.set t.chunks.(ci) (Some c);
                c)

  let add t node =
    let id = Atomic.fetch_and_add t.cursor 1 in
    let chunk = ensure_chunk t (id lsr chunk_bits) in
    chunk.(id land (chunk_size - 1)) <- node;
    id

  let get t id =
    match Atomic.get t.chunks.(id lsr chunk_bits) with
    | Some chunk -> chunk.(id land (chunk_size - 1))
    | None -> invalid_arg "Knapsack.Store.get"
end

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v <= cur then () else if Atomic.compare_and_set a cur v then () else atomic_max a v

let solve_bb (inst_q : Intf.instance) problem ~threads =
  let module I = (val inst_q : Intf.INSTANCE) in
  let problem = by_density problem in
  let n = Array.length problem.values in
  let store = Store.create ~max_nodes:(1 lsl 22) in
  let best = Atomic.make (solve_greedy problem) in
  let inflight = Atomic.make 1 in
  let root = Store.add store (0, 0, 0) in
  let root_bound = upper_bound problem ~level:0 ~weight:0 ~value:0 in
  let seed = I.Q.register I.q in
  I.Q.insert seed (Elt.pack ~priority:(min Elt.max_priority root_bound) ~payload:root);
  I.Q.unregister seed;
  let t0 = Zmsq_util.Timing.now_ns () in
  let worker () =
    Domain.spawn (fun () ->
        let h = I.Q.register I.q in
        let explored = ref 0 and pruned = ref 0 in
        let push ~level ~weight ~value =
          let bound = upper_bound problem ~level ~weight ~value in
          if bound > Atomic.get best then begin
            let id = Store.add store (level, weight, value) in
            Atomic.incr inflight;
            I.Q.insert h (Elt.pack ~priority:(min Elt.max_priority bound) ~payload:id)
          end
        in
        let rec loop () =
          let e = I.Q.extract h in
          if Elt.is_none e then begin
            if Atomic.get inflight > 0 then begin
              Domain.cpu_relax ();
              loop ()
            end
          end
          else begin
            let bound = Elt.priority e in
            let level, weight, value = Store.get store (Elt.payload e) in
            if bound <= Atomic.get best then incr pruned
            else if level >= n then atomic_max best value
            else begin
              incr explored;
              (* take item [level] if it fits; its value is itself feasible *)
              if weight + problem.weights.(level) <= problem.capacity then begin
                let value' = value + problem.values.(level) in
                atomic_max best value';
                push ~level:(level + 1) ~weight:(weight + problem.weights.(level)) ~value:value'
              end;
              (* skip item [level] *)
              push ~level:(level + 1) ~weight ~value
            end;
            Atomic.decr inflight;
            loop ()
          end
        in
        loop ();
        I.Q.unregister h;
        (!explored, !pruned))
  in
  let domains = Array.init threads (fun _ -> worker ()) in
  let explored, pruned =
    Array.fold_left
      (fun (e, p) d ->
        let e', p' = Domain.join d in
        (e + e', p + p'))
      (0, 0) domains
  in
  let wall = float_of_int (Zmsq_util.Timing.now_ns () - t0) /. 1e9 in
  (Atomic.get best, { explored; pruned; wall_seconds = wall })
