(* lint: prim-functorized *)

module type S = sig
  type 'a atomic_src
  type 'a t
  type 'a thread

  val create :
    ?slots_per_thread:int ->
    ?max_threads:int ->
    ?scan_threshold:int ->
    recycle:('a -> unit) ->
    unit ->
    'a t

  val register : 'a t -> 'a thread
  val unregister : 'a thread -> unit
  val live_threads : 'a t -> int
  val max_threads : 'a t -> int
  val protect : 'a thread -> slot:int -> 'a atomic_src -> 'a
  val set : 'a thread -> slot:int -> 'a -> unit
  val clear : 'a thread -> slot:int -> unit
  val clear_all : 'a thread -> unit
  val retire : 'a thread -> 'a -> unit
  val flush : 'a thread -> unit
  val retired_count : 'a t -> int
  val recycled_count : 'a t -> int
  val scan_count : 'a t -> int
  val live_retired : 'a t -> int
end

module Make (P : Zmsq_prim.Intf.PRIM) = struct
  module Atomic = P.Atomic
  module Mutex = P.Mutex
  module Plain = P.Plain

  type 'a atomic_src = 'a P.Atomic.t

  (* [retired]/[retired_len] belong to the record's registered thread; the
     [active] CAS in [register]/[unregister] orders the handoff when a
     record is recycled. They are still declared racy-by-design: a
     scavenger unregistering a *crashed* owner's record (ZMSQ orphan
     reclaim) reads them with no edge from the owner's final writes — the
     protocol covers that by requiring the owner to be quiescent first —
     and [live_retired] sums [retired_len] across live records with no
     synchronization at all (a monitoring estimate, not an invariant). *)
  type 'a record = {
    active : bool Atomic.t; (* lint: unpadded registration word; CAS only at register/unregister *)
    slots : 'a option Atomic.t array; (* lint: unpadded per-owner hazard slots; foreign reads only during scans *)
    retired : 'a list Plain.t; (* race: benign — quiescent-owner handoff *)
    retired_len : int Plain.t; (* race: benign — also racy monitoring reads *)
  }

  type 'a t = {
    records : 'a record array;
    slots_per_thread : int;
    scan_threshold : int;
    recycle : 'a -> unit;
    (* Retired nodes inherited from unregistered threads. *)
    orphans_mu : Mutex.t;
    orphans : 'a list Plain.t; (* lint: guarded-by orphans_mu *)
    orphans_len : int Plain.t; (* lint: guarded-by orphans_mu *)
    retired_total : int Atomic.t; (* lint: unpadded monitoring counter; scan-rate traffic *)
    recycled_total : int Atomic.t; (* lint: unpadded monitoring counter; scan-rate traffic *)
    scans : int Atomic.t; (* lint: unpadded monitoring counter; scan-rate traffic *)
  }

  type 'a thread = { dom : 'a t; record : 'a record }

  (* Exception-safe critical section for the orphan list; the scan path can
     call back into [recycle], which is user code and may raise. *)
  let with_orphans_mu dom f =
    Mutex.lock dom.orphans_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock dom.orphans_mu) f

  let create ?(slots_per_thread = 3) ?(max_threads = 128) ?scan_threshold ~recycle () =
    if slots_per_thread <= 0 || max_threads <= 0 then invalid_arg "Hazard.create";
    let scan_threshold =
      match scan_threshold with
      | Some v -> max 1 v
      | None -> 2 * max_threads * slots_per_thread
    in
    {
      records =
        Array.init max_threads (fun _ ->
            {
              active = Atomic.make false;
              slots = Array.init slots_per_thread (fun _ -> Atomic.make None);
              retired =
                Plain.make ~name:"hazard.retired"
                  ~benign:"owner-quiescence handoff on scavenger unregister" [];
              retired_len =
                Plain.make ~name:"hazard.retired_len"
                  ~benign:"unsynchronized live_retired monitoring reads" 0;
            });
      slots_per_thread;
      scan_threshold;
      recycle;
      orphans_mu = Mutex.create ();
      orphans = Plain.make ~name:"hazard.orphans" [];
      orphans_len = Plain.make ~name:"hazard.orphans_len" 0;
      retired_total = Atomic.make 0;
      recycled_total = Atomic.make 0;
      scans = Atomic.make 0;
    }

  let live_threads dom =
    Array.fold_left (fun acc r -> if Atomic.get r.active then acc + 1 else acc) 0 dom.records

  let max_threads dom = Array.length dom.records

  let register dom =
    let n = Array.length dom.records in
    let rec find i =
      if i >= n then
        invalid_arg
          (Printf.sprintf "Hazard.register: max_threads exceeded (%d live of %d max)"
             (live_threads dom) n)
      else begin
        let r = dom.records.(i) in
        if (not (Atomic.get r.active)) && Atomic.compare_and_set r.active false true then r
        else find (i + 1)
      end
    in
    { dom; record = find 0 }

  let set th ~slot v = Atomic.set th.record.slots.(slot) (Some v)

  let clear th ~slot = Atomic.set th.record.slots.(slot) None

  let clear_all th = Array.iter (fun s -> Atomic.set s None) th.record.slots

  let protect th ~slot src =
    let rec go () =
      let v = Atomic.get src in
      Atomic.set th.record.slots.(slot) (Some v);
      (* Re-validate: once the publication is visible, either [src] still
         points at [v] (so [v] cannot have been recycled) or we retry. *)
      if Atomic.get src == v then v else go ()
    in
    go ()

  (* A scan: collect every published pointer, recycle retired nodes that no
     slot protects, keep the rest for the next scan. *)
  let scan_list dom candidates =
    Atomic.incr dom.scans;
    let protected_ = ref [] in
    Array.iter
      (fun r ->
        if Atomic.get r.active then
          Array.iter
            (fun s -> match Atomic.get s with Some v -> protected_ := v :: !protected_ | None -> ())
            r.slots)
      dom.records;
    let guarded v = List.exists (fun p -> p == v) !protected_ in
    let survivors = ref [] in
    let survivors_len = ref 0 in
    List.iter
      (fun v ->
        if guarded v then begin
          survivors := v :: !survivors;
          incr survivors_len
        end
        else begin
          dom.recycle v;
          Atomic.incr dom.recycled_total
        end)
      candidates;
    (!survivors, !survivors_len)

  let take_orphans dom =
    with_orphans_mu dom (fun () ->
        let o = Plain.get dom.orphans and n = Plain.get dom.orphans_len in
        Plain.set dom.orphans [];
        Plain.set dom.orphans_len 0;
        (o, n))

  let scan th =
    let dom = th.dom in
    let orphans, _ = take_orphans dom in
    let survivors, len = scan_list dom (List.rev_append orphans (Plain.get th.record.retired)) in
    Plain.set th.record.retired survivors;
    Plain.set th.record.retired_len len

  let retire th v =
    let r = th.record in
    Plain.set r.retired (v :: Plain.get r.retired);
    let len = Plain.get r.retired_len + 1 in
    Plain.set r.retired_len len;
    Atomic.incr th.dom.retired_total;
    if len >= th.dom.scan_threshold then scan th

  let flush th = scan th

  let unregister th =
    clear_all th;
    scan th;
    let r = th.record in
    if Plain.get r.retired_len > 0 then begin
      let dom = th.dom in
      with_orphans_mu dom (fun () ->
          Plain.set dom.orphans (List.rev_append (Plain.get r.retired) (Plain.get dom.orphans));
          Plain.set dom.orphans_len (Plain.get dom.orphans_len + Plain.get r.retired_len));
      Plain.set r.retired [];
      Plain.set r.retired_len 0
    end;
    Atomic.set r.active false

  let retired_count dom = Atomic.get dom.retired_total
  let recycled_count dom = Atomic.get dom.recycled_total
  let scan_count dom = Atomic.get dom.scans

  let live_retired dom =
    let local = Array.fold_left (fun acc r -> acc + Plain.get r.retired_len) 0 dom.records in
    let o = with_orphans_mu dom (fun () -> Plain.get dom.orphans_len) in
    local + o
end

include Make (Zmsq_prim.Native)
