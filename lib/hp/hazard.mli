(** Hazard pointers (Michael, 2004) — the paper's safe-memory-reclamation
    substrate (Section 3.5).

    OCaml's GC already guarantees safety, so this implementation exists to
    reproduce the *cost* of memory safety: protected reads publish to shared
    slots and retirement scans all published pointers before recycling a
    node into its free pool, exactly the work a C++ implementation performs.
    ZMSQ's "leak" benchmark mode bypasses this module, mirroring the paper's
    leaky comparators.

    ZMSQ needs at most two hazard pointers per thread (three with a
    list-based set); the default [slots_per_thread] is 3.

    Functorized over {!Zmsq_prim.Intf.PRIM}: the toplevel values are the
    native instantiation; [zmsq_check] model-checks [Make] applied to
    schedulable primitives (its retire-vs-protect regression explores the
    publication / re-validation race exhaustively). *)

module type S = sig
  type 'a atomic_src
  (** The atomic cell type protected reads load from ([P.Atomic.t]). *)

  type 'a t
  (** A reclamation domain managing nodes of type ['a]. *)

  type 'a thread
  (** A registered participant. Thread records are single-owner: each domain
      (or systhread) must register for itself. *)

  val create :
    ?slots_per_thread:int ->
    ?max_threads:int ->
    ?scan_threshold:int ->
    recycle:('a -> unit) ->
    unit ->
    'a t
  (** [create ~recycle ()] builds a domain. [recycle] is invoked on a retired
      node once no hazard pointer can reach it (e.g. push it onto a free
      list). [scan_threshold] bounds the retire-list length before a scan
      (default [2 * max_threads * slots_per_thread]). *)

  val register : 'a t -> 'a thread
  (** Claim a thread record. Raises [Invalid_argument] (reporting the
      live/max record counts) when all [max_threads] records are already
      live. A record released by {!unregister} is immediately reusable by
      the next [register], so register/unregister churn does not leak. *)

  val unregister : 'a thread -> unit
  (** Release the record (clears its slots, flushes its retire list into the
      shared pool for later scans). May be called by a thread other than
      the registering one, provided ownership of the record was handed
      over first — this is how [Zmsq.reclaim_orphans] releases the record
      of a crashed producer after CAS-claiming its handle. *)

  val live_threads : 'a t -> int
  (** Number of currently registered (active) thread records. *)

  val max_threads : 'a t -> int
  (** Capacity of the record table. *)

  val protect : 'a thread -> slot:int -> 'a atomic_src -> 'a
  (** [protect th ~slot src] reads [src], publishes the value in [slot], and
      re-validates until the published value equals the current content of
      [src] — the standard acquire loop. *)

  val set : 'a thread -> slot:int -> 'a -> unit
  (** Publish a value already known to be reachable (e.g. read under a lock). *)

  val clear : 'a thread -> slot:int -> unit

  val clear_all : 'a thread -> unit

  val retire : 'a thread -> 'a -> unit
  (** Mark a node logically removed; it is recycled after some later scan
      finds no slot holding it. *)

  val flush : 'a thread -> unit
  (** Force a scan of this thread's retire list now (tests/teardown). *)

  (** {2 Instrumentation} *)

  val retired_count : 'a t -> int
  val recycled_count : 'a t -> int
  val scan_count : 'a t -> int

  val live_retired : 'a t -> int
  (** Nodes retired but not yet recycled. *)
end

module Make (P : Zmsq_prim.Intf.PRIM) : S with type 'a atomic_src = 'a P.Atomic.t

include S with type 'a atomic_src = 'a Stdlib.Atomic.t
